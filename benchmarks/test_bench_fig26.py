"""Benchmark regenerating Figure 26: GROW vs MatRaptor and GAMMA."""


def test_fig26_spsp_comparison(suite_report):
    result = suite_report.result("fig26_spsp_comparison")
    for row in result.rows:
        assert row["gcnax"] == 1.0
        # GROW outperforms both generic sparse-sparse Gustavson designs, and
        # GAMMA (with its fiber cache) outperforms the cache-less MatRaptor.
        assert row["grow"] > row["gamma"]
        assert row["gamma"] > row["matraptor"]
    assert result.metadata["geomean_speedup_vs_matraptor"] > result.metadata[
        "geomean_speedup_vs_gamma"
    ]
