"""Unit tests for the experiment result/report utilities."""

import pytest

from repro.harness.report import ExperimentResult, format_table


def make_result():
    result = ExperimentResult(
        name="demo",
        paper_reference="Figure 0",
        description="demo rows",
        columns=["dataset", "value"],
    )
    result.add_row(dataset="cora", value=1.5)
    result.add_row(dataset="amazon", value=0.003)
    return result


def test_add_row_and_column_access():
    result = make_result()
    assert result.column("dataset") == ["cora", "amazon"]
    assert result.column("value") == [1.5, 0.003]


def test_add_row_extends_columns():
    result = make_result()
    result.add_row(dataset="yelp", value=2.0, extra_metric=7)
    assert "extra_metric" in result.columns
    assert result.rows[-1]["extra_metric"] == 7


def test_row_for_lookup():
    result = make_result()
    assert result.row_for("dataset", "cora")["value"] == 1.5
    with pytest.raises(KeyError):
        result.row_for("dataset", "missing")


def test_to_table_contains_all_cells():
    result = make_result()
    result.notes.append("normalised to GCNAX")
    table = result.to_table()
    assert "demo" in table
    assert "Figure 0" in table
    assert "cora" in table and "amazon" in table
    assert "note: normalised to GCNAX" in table


def test_to_dict_round_trip():
    result = make_result()
    result.metadata["seed"] = 0
    as_dict = result.to_dict()
    assert as_dict["name"] == "demo"
    assert as_dict["rows"][0]["dataset"] == "cora"
    assert as_dict["metadata"]["seed"] == 0


def test_format_table_alignment():
    table = format_table(["a", "b"], [{"a": "x", "b": 1}, {"a": "longer", "b": 2.5}])
    lines = table.splitlines()
    assert len(lines) == 4
    header, separator = lines[0], lines[1]
    assert header.startswith("a")
    assert set(separator) <= {"-", " "}


def test_format_table_handles_missing_cells():
    table = format_table(["a", "b"], [{"a": 1}])
    assert "1" in table


def test_format_value_rendering():
    table = format_table(["v"], [{"v": 0.00001}, {"v": 12345.0}, {"v": 0}, {"v": 0.25}])
    assert "1.00e-05" in table
    assert "1.23e+04" in table
    assert "0.25" in table
