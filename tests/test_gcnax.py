"""Unit tests for the GCNAX baseline simulator."""

import numpy as np
import pytest

from repro.accelerators.base import AcceleratorConfig
from repro.accelerators.gcnax import GCNAXConfig, GCNAXSimulator, _tile_statistics
from repro.sparse.convert import dense_to_csr


@pytest.fixture
def simulator(scaled_arch):
    return GCNAXSimulator(GCNAXConfig(arch=scaled_arch, tile_rows=16, tile_cols=16))


def test_tile_statistics_counts(rng):
    dense = np.zeros((32, 32))
    dense[0, 0] = 1.0
    dense[0, 1] = 1.0
    dense[20, 20] = 1.0
    stats = _tile_statistics(dense_to_csr(dense), 16, 16)
    assert stats.num_tiles == 2
    assert stats.total_nnz == 3
    assert stats.total_distinct_cols == 3


def test_tile_statistics_distinct_columns():
    dense = np.zeros((8, 8))
    dense[0, 3] = 1.0
    dense[1, 3] = 1.0  # same tile, same column -> one distinct column
    stats = _tile_statistics(dense_to_csr(dense), 8, 8)
    assert stats.total_nnz == 2
    assert stats.total_distinct_cols == 1


def test_tile_statistics_empty():
    stats = _tile_statistics(dense_to_csr(np.zeros((4, 4))), 2, 2)
    assert stats.num_tiles == 0
    assert stats.total_nnz == 0


def test_run_phase_traffic_includes_overfetch(simulator, small_workloads):
    phase = small_workloads[0].aggregation
    stats = simulator.run_phase(phase)
    # Transferred bytes can never be below the effectual bytes.
    assert stats.dram_read_bytes >= stats.requested_read_bytes
    assert stats.dram_write_bytes >= phase.output_bytes
    assert stats.mac_operations == phase.mac_operations


def test_sparse_utilization_low_for_sparse_adjacency(simulator, large_workloads):
    phase = large_workloads[0].aggregation
    stats = simulator.run_phase(phase)
    assert stats.extra["sparse_bandwidth_utilization"] < 0.8


def test_resident_rhs_fetched_once(simulator, small_workloads):
    phase = small_workloads[0].combination
    stats = simulator.run_phase(phase)
    # W is fetched exactly once (rounded to DRAM lines).
    assert stats.extra["dense_rows_fetched"] == 0.0
    assert stats.dram_read_bytes <= (
        phase.sparse.nnz * 12 + phase.dense_bytes + 2 * 64 * stats.extra["occupied_tiles"]
    )


def test_run_layer_has_two_phases(simulator, small_workloads):
    result = simulator.run_layer(small_workloads[0])
    assert [p.name for p in result.phases] == ["combination", "aggregation"]
    assert result.total_cycles > 0
    assert set(result.sram_capacities) == {"sparse_buffer", "dense_buffer", "output_buffer"}


def test_run_model_concatenates_layers(simulator, small_workloads):
    result = simulator.run_model(small_workloads, name="cora")
    assert len(result.phases) == 2 * len(small_workloads)
    assert result.workload == "cora"


def test_tile_overhead_increases_latency(scaled_arch, small_workloads):
    no_overhead = GCNAXSimulator(
        GCNAXConfig(arch=scaled_arch, tile_fetch_overhead_cycles=0.0)
    ).run_model(small_workloads)
    with_overhead = GCNAXSimulator(
        GCNAXConfig(arch=scaled_arch, tile_fetch_overhead_cycles=8.0)
    ).run_model(small_workloads)
    assert with_overhead.total_cycles > no_overhead.total_cycles


def test_more_bandwidth_never_slower(small_workloads):
    slow = GCNAXSimulator(GCNAXConfig(arch=AcceleratorConfig(bandwidth_gbps=8))).run_model(small_workloads)
    fast = GCNAXSimulator(GCNAXConfig(arch=AcceleratorConfig(bandwidth_gbps=64))).run_model(small_workloads)
    assert fast.total_cycles <= slow.total_cycles


def test_smaller_tiles_waste_more_bandwidth(scaled_arch, large_workloads):
    phase = large_workloads[0].aggregation
    small_tiles = GCNAXSimulator(GCNAXConfig(arch=scaled_arch, tile_rows=8, tile_cols=8)).run_phase(phase)
    big_tiles = GCNAXSimulator(GCNAXConfig(arch=scaled_arch, tile_rows=64, tile_cols=64)).run_phase(phase)
    assert (
        small_tiles.extra["sparse_bandwidth_utilization"]
        <= big_tiles.extra["sparse_bandwidth_utilization"] + 1e-9
    )


def test_aggregation_wastes_more_bandwidth_than_combination(simulator, large_workloads):
    # At any graph scale, GCNAX's tiled fetch of the (much sparser) adjacency
    # matrix is less effectual than its fetch of the feature matrix; this is
    # the per-phase version of the paper's Figure 6 observation.  (The
    # full-scale "aggregation dominates latency" claim is checked by the
    # Figure 7 benchmark on the default-size datasets.)
    result = simulator.run_layer(large_workloads[0])
    combination, aggregation = result.phases
    assert aggregation.bandwidth_utilization <= combination.bandwidth_utilization + 1e-9
