"""Cross-family structural properties of the synthetic graph generators.

``test_generators.py`` pins behaviours of individual generators; this
module asserts the invariants every family must satisfy uniformly — the
contract the vectorized implementations were rewritten against.  Each
property runs for all four families over several seeds, so a family
regressing on a shared invariant fails here even if its dedicated unit
tests never exercised that corner.
"""

import numpy as np
import pytest

from repro.graph.generators import (
    chung_lu_graph,
    erdos_renyi_graph,
    powerlaw_cluster_graph,
    rmat_graph,
)

# Each family as (name, factory) where the factory takes
# (num_nodes, average_degree, rng) and applies family-specific defaults.
FAMILIES = {
    "chung-lu": lambda n, d, rng: chung_lu_graph(n, d, num_communities=8, rng=rng),
    "erdos-renyi": lambda n, d, rng: erdos_renyi_graph(n, d, rng=rng),
    "powerlaw-cluster": lambda n, d, rng: powerlaw_cluster_graph(n, d, rng=rng),
    "rmat": lambda n, d, rng: rmat_graph(n, d, num_communities=4, rng=rng),
}

SEEDS = (0, 7, 1234)


def build(family: str, num_nodes: int, average_degree: float, seed: int):
    return FAMILIES[family](num_nodes, average_degree, np.random.default_rng(seed))


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("seed", SEEDS)
def test_node_count_matches_request(family, seed):
    graph = build(family, 1000, 8.0, seed)
    assert graph.num_nodes == 1000


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("seed", SEEDS)
def test_no_self_loops(family, seed):
    graph = build(family, 1000, 8.0, seed)
    assert not np.any(graph.src == graph.dst)


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("seed", SEEDS)
def test_endpoints_in_range(family, seed):
    graph = build(family, 1000, 8.0, seed)
    for endpoints in (graph.src, graph.dst):
        assert endpoints.min() >= 0
        assert endpoints.max() < graph.num_nodes


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("seed", SEEDS)
def test_mean_degree_within_two_percent(family, seed):
    # At 5000 nodes every family concentrates well inside 2% of the
    # requested average degree (measured headroom is >10x for all four).
    graph = build(family, 5000, 12.0, seed)
    assert graph.average_degree == pytest.approx(12.0, rel=0.02)


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("num_nodes", (1, 2))
def test_degenerate_sizes_do_not_crash(family, num_nodes):
    # The smallest graphs must come back well-formed: the right node
    # count, no self-loops, and (for one node, where no legal edge
    # exists) no edges at all.
    graph = build(family, num_nodes, 4.0, 0)
    assert graph.num_nodes == num_nodes
    assert not np.any(graph.src == graph.dst)
    if num_nodes == 1:
        assert graph.src.size == 0


def test_rmat_community_labels_are_contiguous_blocks():
    for seed in SEEDS:
        graph = rmat_graph(
            2048, 10.0, num_communities=4, rng=np.random.default_rng(seed)
        )
        labels = graph.communities
        assert labels is not None
        assert labels.size == graph.num_nodes
        # High-bit labelling: all requested communities appear, labels are
        # non-decreasing in node id, and (power-of-two node count) every
        # block covers an equal span of the id space.
        assert set(np.unique(labels)) == set(range(4))
        assert np.all(np.diff(labels) >= 0)
        counts = np.bincount(labels, minlength=4)
        assert np.all(counts == 2048 // 4)


def test_chung_lu_community_labels_cover_all_nodes():
    for seed in SEEDS:
        graph = chung_lu_graph(
            1000, 8.0, num_communities=8, rng=np.random.default_rng(seed)
        )
        labels = graph.communities
        assert labels is not None
        assert labels.size == graph.num_nodes
        assert set(np.unique(labels)).issubset(set(range(8)))
