"""Main evaluation against GCNAX: Figures 17 through 21."""

from __future__ import annotations

from repro.harness.config import ExperimentConfig
from repro.harness.experiments.common import gcnax_results, geomean, grow_results
from repro.harness.registry import register
from repro.harness.report import ExperimentResult
from repro.harness.workloads import get_bundle


@register("fig17_hdn_hit_rate")
def fig17_hdn_hit_rate(config: ExperimentConfig) -> ExperimentResult:
    """HDN cache hit rate with and without graph partitioning."""
    result = ExperimentResult(
        name="fig17_hdn_hit_rate",
        paper_reference="Figure 17",
        description="HDN cache hit rate of GROW with and without graph partitioning",
        columns=["dataset", "hit_rate_without_gp", "hit_rate_with_gp"],
    )
    for name in config.datasets:
        bundle = get_bundle(name, config)
        with_gp = grow_results(config, bundle, partitioned=True)
        without_gp = grow_results(config, bundle, partitioned=False)
        result.add_row(
            dataset=name,
            hit_rate_without_gp=without_gp.extra["hdn_hit_rate"],
            hit_rate_with_gp=with_gp.extra["hdn_hit_rate"],
        )
    return result


@register("fig18_memory_traffic")
def fig18_memory_traffic(config: ExperimentConfig) -> ExperimentResult:
    """Total DRAM bytes read, normalised to GCNAX."""
    result = ExperimentResult(
        name="fig18_memory_traffic",
        paper_reference="Figure 18",
        description="DRAM read traffic of GROW (w/o and w/ graph partitioning) normalised to GCNAX",
        columns=["dataset", "gcnax", "grow_without_gp", "grow_with_gp"],
    )
    for name in config.datasets:
        bundle = get_bundle(name, config)
        gcnax = gcnax_results(config, bundle)
        grow_gp = grow_results(config, bundle, partitioned=True)
        grow_no = grow_results(config, bundle, partitioned=False)
        base = gcnax.dram_read_bytes or 1
        result.add_row(
            dataset=name,
            gcnax=1.0,
            grow_without_gp=grow_no.dram_read_bytes / base,
            grow_with_gp=grow_gp.dram_read_bytes / base,
        )
    return result


@register("fig19_traffic_reduction")
def fig19_traffic_reduction(config: ExperimentConfig) -> ExperimentResult:
    """DRAM-traffic reduction of HDN caching and graph partitioning."""
    result = ExperimentResult(
        name="fig19_traffic_reduction",
        paper_reference="Figure 19",
        description=(
            "DRAM traffic reduction relative to GROW without HDN caching "
            "(higher is better)"
        ),
        columns=["dataset", "without_hdn_caching", "with_hdn_caching", "with_hdn_caching_and_gp"],
    )
    for name in config.datasets:
        bundle = get_bundle(name, config)
        no_cache = grow_results(config, bundle, partitioned=False, enable_hdn_cache=False)
        cache_only = grow_results(config, bundle, partitioned=False)
        cache_gp = grow_results(config, bundle, partitioned=True)
        base = no_cache.total_dram_bytes or 1
        result.add_row(
            dataset=name,
            without_hdn_caching=1.0,
            with_hdn_caching=base / max(1, cache_only.total_dram_bytes),
            with_hdn_caching_and_gp=base / max(1, cache_gp.total_dram_bytes),
        )
    return result


@register("fig20_speedup")
def fig20_speedup(config: ExperimentConfig) -> ExperimentResult:
    """End-to-end speedup over GCNAX and the per-phase latency breakdown."""
    result = ExperimentResult(
        name="fig20_speedup",
        paper_reference="Figure 20",
        description=(
            "Speedup of GROW (w/o and w/ graph partitioning) over GCNAX, plus "
            "each design's aggregation/combination latency normalised to GCNAX"
        ),
        columns=[
            "dataset",
            "speedup_without_gp",
            "speedup_with_gp",
            "gcnax_aggregation",
            "gcnax_combination",
            "grow_aggregation",
            "grow_combination",
        ],
    )
    speedups = []
    for name in config.datasets:
        bundle = get_bundle(name, config)
        gcnax = gcnax_results(config, bundle)
        grow_gp = grow_results(config, bundle, partitioned=True)
        grow_no = grow_results(config, bundle, partitioned=False)
        base = gcnax.total_cycles or 1.0
        speedups.append(grow_gp.speedup_over(gcnax))
        result.add_row(
            dataset=name,
            speedup_without_gp=grow_no.speedup_over(gcnax),
            speedup_with_gp=grow_gp.speedup_over(gcnax),
            gcnax_aggregation=gcnax.phase_cycles("aggregation") / base,
            gcnax_combination=gcnax.phase_cycles("combination") / base,
            grow_aggregation=grow_gp.phase_cycles("aggregation") / base,
            grow_combination=grow_gp.phase_cycles("combination") / base,
        )
    result.metadata["geomean_speedup_with_gp"] = geomean(speedups)
    result.notes.append(
        f"Geometric-mean speedup of GROW (with G.P.) over GCNAX: {geomean(speedups):.2f}x"
    )
    return result


@register("fig21_ablation")
def fig21_ablation(config: ExperimentConfig) -> ExperimentResult:
    """Average speedup as GROW's optimisations are applied one by one."""
    result = ExperimentResult(
        name="fig21_ablation",
        paper_reference="Figure 21",
        description=(
            "Geometric-mean speedup over GCNAX when incrementally enabling "
            "HDN caching, runahead execution and graph partitioning"
        ),
        columns=["configuration", "geomean_speedup"],
    )
    per_config: dict[str, list[float]] = {
        "gcnax_baseline": [],
        "hdn_cache_only": [],
        "plus_runahead": [],
        "plus_graph_partitioning": [],
    }
    for name in config.datasets:
        bundle = get_bundle(name, config)
        gcnax_cycles = gcnax_results(config, bundle).total_cycles
        cache_only = grow_results(
            config, bundle, partitioned=False, enable_runahead=False
        ).total_cycles
        runahead = grow_results(config, bundle, partitioned=False).total_cycles
        full = grow_results(config, bundle, partitioned=True).total_cycles
        per_config["gcnax_baseline"].append(1.0)
        per_config["hdn_cache_only"].append(gcnax_cycles / cache_only)
        per_config["plus_runahead"].append(gcnax_cycles / runahead)
        per_config["plus_graph_partitioning"].append(gcnax_cycles / full)
    for configuration, values in per_config.items():
        result.add_row(configuration=configuration, geomean_speedup=geomean(values))
    return result
