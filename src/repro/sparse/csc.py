"""Compressed sparse column (CSC) matrix container.

CSC is the compression format GCNAX uses for its tiled outer-product
SpDeGEMM (paper Figure 4(b)).  It is the column-major mirror of CSR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np


@dataclass
class CSCMatrix:
    """A sparse matrix in compressed sparse column format.

    Attributes:
        shape: ``(n_rows, n_cols)``.
        indptr: array of length ``n_cols + 1``; column ``j`` owns the
            non-zeros in the slice ``[indptr[j], indptr[j + 1])``.
        indices: row index of each stored non-zero.
        data: value of each stored non-zero.
    """

    shape: tuple[int, int]
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray

    def __post_init__(self) -> None:
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        self.indices = np.asarray(self.indices, dtype=np.int64)
        self.data = np.asarray(self.data, dtype=np.float64)
        n_rows, n_cols = self.shape
        if self.indptr.size != n_cols + 1:
            raise ValueError(
                f"indptr must have length n_cols + 1 = {n_cols + 1}, got {self.indptr.size}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.size != self.data.size:
            raise ValueError("indices and data must have the same length")
        if self.indices.size and (self.indices.min() < 0 or self.indices.max() >= n_rows):
            raise ValueError("row index out of bounds")

    @property
    def nnz(self) -> int:
        """Number of stored non-zero entries."""
        return int(self.data.size)

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    @property
    def density(self) -> float:
        """Fraction of matrix cells that are non-zero."""
        total = self.shape[0] * self.shape[1]
        if total == 0:
            return 0.0
        return self.nnz / total

    @classmethod
    def empty(cls, shape: tuple[int, int]) -> "CSCMatrix":
        """Create an all-zero matrix of the given shape."""
        return cls(
            shape=shape,
            indptr=np.zeros(shape[1] + 1, dtype=np.int64),
            indices=np.empty(0, dtype=np.int64),
            data=np.empty(0, dtype=np.float64),
        )

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSCMatrix":
        """Build a CSC matrix from a dense 2-D array."""
        from repro.sparse.convert import coo_to_csc
        from repro.sparse.coo import COOMatrix

        return coo_to_csc(COOMatrix.from_dense(np.asarray(dense)))

    def col_nnz(self) -> np.ndarray:
        """Number of non-zeros in each column."""
        return np.diff(self.indptr)

    def col(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(row_indices, values)`` of column ``j``."""
        if not 0 <= j < self.n_cols:
            raise IndexError(f"column index {j} out of range [0, {self.n_cols})")
        start, end = self.indptr[j], self.indptr[j + 1]
        return self.indices[start:end], self.data[start:end]

    def iter_cols(self) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(col_index, row_indices, values)`` for every column."""
        for j in range(self.n_cols):
            rows, vals = self.col(j)
            yield j, rows, vals

    def to_dense(self) -> np.ndarray:
        """Materialise the matrix as a dense 2-D array."""
        dense = np.zeros(self.shape, dtype=np.float64)
        col_ids = np.repeat(np.arange(self.n_cols), self.col_nnz())
        np.add.at(dense, (self.indices, col_ids), self.data)
        return dense

    def total_bytes(self, value_bytes: int = 8, index_bytes: int = 4) -> int:
        """Total compressed storage footprint (values + indices + indptr)."""
        return (
            self.nnz * (value_bytes + index_bytes)
            + self.indptr.size * index_bytes
        )
