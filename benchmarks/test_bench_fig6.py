"""Benchmark regenerating Figure 6: effective bandwidth utilisation of GCNAX."""


def test_fig6_bandwidth_util(suite_report):
    result = suite_report.result("fig6_bandwidth_util")
    for row in result.rows:
        # Fetching the (dense-ish) feature matrix X is always at least as
        # efficient as fetching the much sparser adjacency matrix A.
        assert row["utilization_X"] >= row["utilization_A"] - 1e-9
    # Reddit's dense adjacency is the one case where GCNAX's tiling stays
    # efficient; the sparse e-commerce/social graphs waste the most bandwidth.
    by_dataset = {row["dataset"]: row for row in result.rows}
    assert by_dataset["reddit"]["utilization_A"] > by_dataset["amazon"]["utilization_A"]
