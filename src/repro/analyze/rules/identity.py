"""KEY: cache identity — the request *is* the cache key, completely.

PR 4 made ``SimRequest.canonical_json()`` the universal cache identity:
every field of the frozen request dataclasses must reach ``to_dict()``
(which ``canonical_json`` serialises), or two requests that differ in the
missing field would silently share a cache entry.  And because the frozen
dataclasses canonicalise themselves in ``__post_init__``, any
``object.__setattr__`` *outside* construction would mutate an object
whose cache key has already been taken.

* ``KEY001`` — every field of a frozen dataclass that defines ``to_dict``
  must be reachable from it (named as a key or read as ``self.<field>``).
* ``KEY002`` — ``object.__setattr__`` on frozen instances only during
  ``__post_init__`` (or helpers it calls), and only on ``self``.
* ``KEY003`` — interprocedural completeness: every request field *read*
  anywhere in a backend's call-graph-reachable code must reach
  ``canonical_json()`` (or be documented as canonicalised away in
  :data:`repro.analyze.contracts.CACHE_KEY_EXEMPT_FIELDS`), so a future
  backend cannot branch on a field that two identically-keyed requests
  are allowed to differ in.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analyze.contracts import CheckConfig
from repro.analyze.findings import Finding
from repro.analyze.project import ModuleInfo, Project
from repro.analyze.rules.base import Rule, register


def _decorator_name(node: ast.expr) -> str:
    if isinstance(node, ast.Call):
        node = node.func
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _is_frozen_dataclass(cls: ast.ClassDef) -> bool:
    for decorator in cls.decorator_list:
        if _decorator_name(decorator) not in ("dataclass", "dataclasses.dataclass"):
            continue
        if isinstance(decorator, ast.Call):
            for keyword in decorator.keywords:
                if (
                    keyword.arg == "frozen"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                ):
                    return True
    return False


def _dataclass_fields(cls: ast.ClassDef) -> list[tuple[str, int]]:
    """(field name, line) for every annotated public field of the class."""
    fields: list[tuple[str, int]] = []
    for node in cls.body:
        if not isinstance(node, ast.AnnAssign) or not isinstance(node.target, ast.Name):
            continue
        name = node.target.id
        if name.startswith("_"):
            continue
        annotation = ast.dump(node.annotation)
        if "ClassVar" in annotation or "InitVar" in annotation:
            continue
        fields.append((name, node.lineno))
    return fields


def _methods(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {
        node.name: node
        for node in cls.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _names_reached(func: ast.FunctionDef) -> set[str]:
    """String constants and ``self.<attr>`` reads inside a method body —
    the two ways a field can reach the serialised form."""
    reached: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            reached.add(node.value)
        elif (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            reached.add(node.attr)
    return reached


@register
class FieldsReachCanonicalForm(Rule):
    rule_id = "KEY001"
    family = "KEY"
    summary = "every frozen-dataclass field must reach to_dict()/canonical_json()"
    contract = "docs/architecture.md 'The request is the cache key' (PR 4)"

    def check(self, project: Project, config: CheckConfig) -> Iterator[Finding]:
        for module in project.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef) or not _is_frozen_dataclass(node):
                    continue
                methods = _methods(node)
                to_dict = methods.get("to_dict")
                if to_dict is None:
                    continue
                reached = _names_reached(to_dict)
                # Helpers to_dict calls on self can serialise fields too.
                for name, method in methods.items():
                    if name != "to_dict" and name in reached:
                        reached |= _names_reached(method)
                for field_name, line in _dataclass_fields(node):
                    if field_name not in reached:
                        yield self.finding(
                            module,
                            line,
                            f"field '{field_name}' of frozen dataclass "
                            f"'{node.name}' never reaches to_dict(); two "
                            f"instances differing only in '{field_name}' "
                            f"would share a cache identity",
                        )


@register
class FrozenMutationOnlyInPostInit(Rule):
    rule_id = "KEY002"
    family = "KEY"
    summary = "object.__setattr__ only inside __post_init__ canonicalisation"
    contract = "docs/architecture.md request canonicalisation (PR 4, PR 5)"

    def check(self, project: Project, config: CheckConfig) -> Iterator[Finding]:
        for module in project.modules:
            yield from self._check_module(module)

    def _check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        # Classes: __post_init__ and the helpers reachable from it may
        # canonicalise self; everything else is a post-construction mutation.
        covered: set[int] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = _methods(node)
            allowed = self._reachable_from_post_init(methods)
            for name, method in methods.items():
                for call in self._setattr_calls(method):
                    covered.add(id(call))
                    if name not in allowed:
                        yield self.finding(
                            module,
                            call.lineno,
                            f"object.__setattr__ in {node.name}.{name}(); "
                            f"frozen instances may only be written during "
                            f"__post_init__ canonicalisation — afterwards "
                            f"their cache identity is already taken",
                        )
                    elif not self._targets_self(call):
                        yield self.finding(
                            module,
                            call.lineno,
                            f"object.__setattr__ on a non-self target in "
                            f"{node.name}.{name}(); __post_init__ may only "
                            f"canonicalise the instance under construction",
                        )
        # Free functions (and anything else outside a class body).
        for call in self._setattr_calls(module.tree):
            if id(call) not in covered:
                yield self.finding(
                    module,
                    call.lineno,
                    "object.__setattr__ outside any class; frozen instances "
                    "may only be written during __post_init__",
                )

    @staticmethod
    def _setattr_calls(root: ast.AST) -> list[ast.Call]:
        calls = []
        for node in ast.walk(root):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "__setattr__"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "object"
            ):
                calls.append(node)
        return calls

    @staticmethod
    def _targets_self(call: ast.Call) -> bool:
        return (
            bool(call.args)
            and isinstance(call.args[0], ast.Name)
            and call.args[0].id == "self"
        )

    @staticmethod
    def _reachable_from_post_init(methods: dict[str, ast.FunctionDef]) -> set[str]:
        if "__post_init__" not in methods:
            return set()
        reachable = {"__post_init__"}
        frontier = ["__post_init__"]
        while frontier:
            current = methods[frontier.pop()]
            for node in ast.walk(current):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                    and node.func.attr in methods
                    and node.func.attr not in reachable
                ):
                    reachable.add(node.func.attr)
                    frontier.append(node.func.attr)
        return reachable


def _request_field_status(project: Project) -> dict[str, list[tuple[str, bool]]]:
    """``field -> [(class name, reaches to_dict)]`` over every *request
    class* — a frozen dataclass defining both ``canonical_json`` and
    ``to_dict`` (``SimRequest`` in this repo)."""
    status: dict[str, list[tuple[str, bool]]] = {}
    for module in project.modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef) or not _is_frozen_dataclass(node):
                continue
            methods = _methods(node)
            if "canonical_json" not in methods or "to_dict" not in methods:
                continue
            reached = _names_reached(methods["to_dict"])
            for name, method in methods.items():
                if name != "to_dict" and name in reached:
                    reached |= _names_reached(method)
            for field_name, _line in _dataclass_fields(node):
                status.setdefault(field_name, []).append(
                    (node.name, field_name in reached)
                )
    return status


@register
class BackendRequestReadsAreKeyed(Rule):
    rule_id = "KEY003"
    family = "KEY"
    summary = "request fields read in backend code must reach canonical_json()"
    contract = "docs/architecture.md 'The request is the cache key' (PR 4, PR 10)"

    def check(self, project: Project, config: CheckConfig) -> Iterator[Finding]:
        from repro.analyze.callgraph import graph_for, short_name

        field_status = _request_field_status(project)
        if not field_status:
            return
        graph = graph_for(project)
        # Backend classes: non-protocol classes carrying a ``name`` class
        # attribute and a ``run`` method taking the request parameter —
        # the structural shape the Backend protocol demands.
        entries: set[str] = set()
        for cls_qual, cls in graph.classes.items():
            if cls.is_protocol:
                continue
            if "name" not in graph._all_class_attrs(cls_qual):
                continue
            for run_qual in graph.method_candidates(cls_qual, "run"):
                run = graph.functions[run_qual]
                params = {
                    arg.arg
                    for arg in [
                        *run.node.args.posonlyargs,
                        *run.node.args.args,
                        *run.node.args.kwonlyargs,
                    ]
                }
                if config.request_param in params:
                    entries.add(run_qual)
        if not entries:
            return
        seen: set[tuple] = set()
        for qual in sorted(graph.reachable(entries)):
            info = graph.functions[qual]
            for node in ast.walk(info.node):
                if not (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.ctx, ast.Load)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == config.request_param
                ):
                    continue
                attr = node.attr
                if attr not in field_status:
                    continue  # a method or non-field attribute
                if attr in config.cache_key_exempt_fields:
                    continue
                if any(reached for _cls, reached in field_status[attr]):
                    continue
                classes = ", ".join(sorted({cls for cls, _ in field_status[attr]}))
                finding = self.finding(
                    info.module,
                    node.lineno,
                    f"backend-reachable '{short_name(info)}' reads "
                    f"request.{attr}, a field of {classes} that never "
                    f"reaches canonical_json(); two requests differing only "
                    f"in '{attr}' would share a cache identity (documented "
                    f"exceptions go in contracts.CACHE_KEY_EXEMPT_FIELDS)",
                )
                key = (finding.path, finding.line, finding.message)
                if key not in seen:
                    seen.add(key)
                    yield finding
