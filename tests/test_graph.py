"""Unit tests for the Graph container."""

import numpy as np
import pytest

from repro.graph.graph import Graph


def test_num_edges_counts_both_directions(tiny_graph):
    # 11 undirected edges -> 22 adjacency non-zeros.
    assert tiny_graph.num_edges == 22
    assert tiny_graph.average_degree == pytest.approx(22 / 6)


def test_adjacency_is_symmetric(tiny_graph):
    dense = tiny_graph.adjacency().to_dense()
    np.testing.assert_allclose(dense, dense.T)


def test_adjacency_is_binary(tiny_graph):
    dense = tiny_graph.adjacency().to_dense()
    assert set(np.unique(dense)).issubset({0.0, 1.0})


def test_duplicate_edges_collapse():
    graph = Graph.from_edge_list(3, [(0, 1), (0, 1), (1, 0)])
    assert graph.num_edges == 2


def test_degrees(tiny_graph):
    degrees = tiny_graph.degrees()
    assert degrees.sum() == tiny_graph.num_edges
    assert degrees[0] == 5  # node 0 connects to 1,2,3,4,5


def test_neighbors(tiny_graph):
    assert set(tiny_graph.neighbors(0).tolist()) == {1, 2, 3, 4, 5}
    assert set(tiny_graph.neighbors(2).tolist()) == {0, 5}


def test_normalized_adjacency_rows_bounded(tiny_graph):
    norm = tiny_graph.normalized_adjacency()
    assert norm.nnz >= tiny_graph.num_edges  # self loops added
    assert norm.data.max() <= 1.0 + 1e-12
    assert norm.data.min() > 0.0


def test_normalized_adjacency_symmetric(tiny_graph):
    dense = tiny_graph.normalized_adjacency().to_dense()
    np.testing.assert_allclose(dense, dense.T, atol=1e-12)


def test_normalized_adjacency_isolated_node():
    graph = Graph.from_edge_list(3, [(0, 1)])
    dense = graph.normalized_adjacency().to_dense()
    # The isolated node still gets a self loop of weight 1.
    assert dense[2, 2] == pytest.approx(1.0)


def test_relabel_preserves_topology(tiny_graph, rng):
    perm = rng.permutation(tiny_graph.num_nodes)
    relabelled = tiny_graph.relabel(perm)
    original = tiny_graph.adjacency().to_dense()
    new = relabelled.adjacency().to_dense()
    for i in range(tiny_graph.num_nodes):
        for j in range(tiny_graph.num_nodes):
            assert original[i, j] == new[perm[i], perm[j]]


def test_relabel_rejects_non_bijection(tiny_graph):
    with pytest.raises(ValueError):
        tiny_graph.relabel(np.zeros(tiny_graph.num_nodes, dtype=int))
    with pytest.raises(ValueError):
        tiny_graph.relabel(np.arange(tiny_graph.num_nodes - 1))


def test_relabel_carries_communities():
    graph = Graph.from_edge_list(4, [(0, 1), (2, 3)])
    graph.communities = np.array([0, 0, 1, 1])
    perm = np.array([3, 2, 1, 0])
    relabelled = graph.relabel(perm)
    # Node 0 (community 0) is now node 3.
    assert relabelled.communities[3] == 0
    assert relabelled.communities[0] == 1


def test_invalid_edges_rejected():
    with pytest.raises(ValueError):
        Graph.from_edge_list(2, [(0, 5)])
    with pytest.raises(ValueError):
        Graph(num_nodes=0, src=np.array([]), dst=np.array([]))


def test_to_networkx_round_trip(tiny_graph):
    nx_graph = tiny_graph.to_networkx()
    assert nx_graph.number_of_nodes() == tiny_graph.num_nodes
    assert nx_graph.number_of_edges() == tiny_graph.num_edges // 2


def test_directed_graph_edges_not_mirrored():
    graph = Graph.from_edge_list(3, [(0, 1), (1, 2)], undirected=False)
    dense = graph.adjacency().to_dense()
    assert dense[0, 1] == 1.0
    assert dense[1, 0] == 0.0
