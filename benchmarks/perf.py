#!/usr/bin/env python
"""Run the fixed benchmark ladder and append ``BENCH_<n>.json`` here.

Equivalent to ``python -m repro bench`` (same flags, same output); kept
as a script so the performance trajectory can be regenerated without
knowing the CLI:

    PYTHONPATH=src python benchmarks/perf.py
    PYTHONPATH=src python benchmarks/perf.py --rungs grow-10k --repeats 3

Each ``BENCH_<n>.json`` records wall-clock, peak RSS, the simulated
metrics and a scenario digest per rung; see ``repro.bench`` for the
schema and ``docs/architecture.md`` for how the trajectory is used.
"""

import sys
from pathlib import Path

if __name__ == "__main__":
    # Make ``import repro`` work when invoked as a plain script from the
    # repository root without PYTHONPATH.
    src = Path(__file__).resolve().parent.parent / "src"
    if src.is_dir() and str(src) not in sys.path:
        sys.path.insert(0, str(src))

    from repro.bench.runner import main

    sys.exit(main())
