"""repro: a reproduction of GROW (HPCA 2023).

GROW is a row-stationary sparse-dense GEMM accelerator for graph
convolutional networks.  This package contains the full reproduction stack:

* ``repro.sparse``  — sparse-matrix formats and reference SpMM dataflows
* ``repro.graph``   — graph containers, synthetic datasets, partitioning
* ``repro.gcn``     — GCN layers, feature generation, MAC counting
* ``repro.memory``  — DRAM / SRAM / DMA models and traffic accounting
* ``repro.energy``  — energy and area models
* ``repro.accelerators`` — GCNAX, HyGCN, MatRaptor and GAMMA baselines
* ``repro.core``    — the GROW accelerator itself
* ``repro.analysis`` — workload characterisation (densities, tiles, bandwidth)
* ``repro.harness`` — experiment registry, suite orchestration (parallel
  execution + on-disk result caching) and structured reports
* ``repro.dse``     — design-space exploration (samplers, Pareto frontiers)
* ``repro.scaleout`` — multi-chip systems (sharding, interconnect, scaling)
* ``repro.api``     — the unified simulation-service facade: one typed
  ``Session.run(SimRequest) -> RunResult`` contract over every engine above

Quick start::

    from repro.api import Session, SimRequest
    result = Session().run(SimRequest(dataset="cora", backend="grow"))
    print(result.total_cycles)

    from repro.harness import run_experiment
    result = run_experiment("fig20_speedup", datasets=("cora", "citeseer"))
    print(result.to_table())

Or from the command line (see README.md for the full workflow)::

    python -m repro list --verbose
    python -m repro run fig20_speedup
    python -m repro sim --backend grow --datasets cora
    python -m repro suite --jobs 8        # full figure suite, cached
"""

__version__ = "1.1.0"

#: Convenience exports, resolved lazily (PEP 562) so that ``import repro``
#: stays standard-library-cheap: the stdlib-only subsystems (``repro.obs``,
#: ``repro.analyze`` — e.g. ``python -m repro check`` on a bare
#: interpreter) must be reachable without pulling in the numpy-backed
#: simulation stack.
_LAZY_EXPORTS = {
    "GrowConfig": "repro.core",
    "GrowSimulator": "repro.core",
    "GCNAXSimulator": "repro.accelerators",
}

__all__ = ["GrowConfig", "GrowSimulator", "GCNAXSimulator", "__version__"]


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
