"""Unit tests for GROW's preprocessing pass (partitioning + HDN lists)."""

import numpy as np
import pytest

from repro.core.preprocess import GrowPreprocessor, PreprocessPlan
from repro.graph.partition import metis_like_partition


def test_plan_without_partitioning(community_graph):
    plan = GrowPreprocessor(hdn_list_capacity=32).plan_without_partitioning(
        community_graph.adjacency()
    )
    assert plan.num_clusters == 1
    assert not plan.partitioned
    assert plan.clusters[0].size == community_graph.num_nodes
    assert plan.hdn_lists[0].size <= 32
    plan.validate()


def test_global_hdns_are_highest_degree(community_graph):
    adjacency = community_graph.adjacency()
    plan = GrowPreprocessor(hdn_list_capacity=5).plan_without_partitioning(adjacency)
    degrees = adjacency.row_nnz()
    top5 = set(np.argsort(-degrees, kind="stable")[:5].tolist())
    # Column-reference counts equal degrees for a symmetric adjacency, so the
    # selected HDNs are the top-degree nodes.
    assert set(plan.hdn_lists[0].tolist()) == top5


def test_plan_from_graph_partitions(community_graph):
    plan = GrowPreprocessor(num_clusters=6, hdn_list_capacity=64, seed=0).plan_from_graph(
        community_graph
    )
    assert plan.partitioned
    assert plan.num_clusters >= 2
    assert plan.preprocessing_seconds >= 0.0
    plan.validate()


def test_plan_covers_all_nodes_exactly_once(community_graph):
    plan = GrowPreprocessor(num_clusters=5, seed=1).plan_from_graph(community_graph)
    covered = np.concatenate(plan.clusters)
    assert covered.size == community_graph.num_nodes
    assert np.unique(covered).size == community_graph.num_nodes


def test_cluster_of_node_consistent_with_clusters(community_graph):
    plan = GrowPreprocessor(num_clusters=4, seed=0).plan_from_graph(community_graph)
    for nodes in plan.clusters:
        labels = np.unique(plan.cluster_of_node[nodes])
        assert labels.size == 1


def test_hdn_lists_respect_capacity(community_graph):
    plan = GrowPreprocessor(num_clusters=4, hdn_list_capacity=7, seed=0).plan_from_graph(
        community_graph
    )
    assert all(lst.size <= 7 for lst in plan.hdn_lists)
    assert plan.hdn_storage_bytes() == sum(lst.size * 3 for lst in plan.hdn_lists)


def test_intra_only_restricts_candidates(community_graph):
    adjacency = community_graph.adjacency()
    partition = metis_like_partition(community_graph, 4, seed=0)
    preprocessor = GrowPreprocessor(hdn_list_capacity=1000)
    plan = preprocessor.plan_from_partition(adjacency, partition, intra_only=True)
    for nodes, hdns in zip(plan.clusters, plan.hdn_lists):
        assert np.isin(hdns, nodes).all()


def test_non_intra_only_can_include_external_hubs(community_graph):
    adjacency = community_graph.adjacency()
    partition = metis_like_partition(community_graph, 4, seed=0)
    preprocessor = GrowPreprocessor(hdn_list_capacity=1000)
    loose = preprocessor.plan_from_partition(adjacency, partition, intra_only=False)
    strict = preprocessor.plan_from_partition(adjacency, partition, intra_only=True)
    # Dropping the restriction can only grow (or keep) each cluster's list.
    assert sum(l.size for l in loose.hdn_lists) >= sum(l.size for l in strict.hdn_lists)


def test_single_cluster_request_falls_back(community_graph):
    plan = GrowPreprocessor(num_clusters=1).plan_from_graph(community_graph)
    assert plan.num_clusters == 1


def test_target_cluster_nodes_controls_cluster_count(community_graph):
    plan = GrowPreprocessor(target_cluster_nodes=100, seed=0).plan_from_graph(community_graph)
    assert plan.num_clusters >= 4


def test_plan_validation_catches_overlap():
    plan = PreprocessPlan(
        num_nodes=4,
        cluster_of_node=np.zeros(4, dtype=np.int64),
        clusters=[np.array([0, 1]), np.array([1, 2, 3])],
        hdn_lists=[np.array([0]), np.array([2])],
        hdn_list_capacity=4,
        partitioned=True,
    )
    with pytest.raises(ValueError):
        plan.validate()


def test_plan_validation_catches_capacity_violation():
    plan = PreprocessPlan(
        num_nodes=2,
        cluster_of_node=np.zeros(2, dtype=np.int64),
        clusters=[np.array([0, 1])],
        hdn_lists=[np.array([0, 1, 0, 1])],
        hdn_list_capacity=2,
        partitioned=False,
    )
    with pytest.raises(ValueError):
        plan.validate()
