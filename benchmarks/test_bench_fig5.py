"""Benchmark regenerating Figure 5: non-zeros per GCNAX tile."""


def test_fig5_tile_nnz(suite_report, experiment_config):
    result = suite_report.result("fig5_tile_nnz")
    # Two rows (matrix A and matrix X) per dataset.
    assert len(result.rows) == 2 * len(experiment_config.datasets)
    by_key = {(row["dataset"], row["matrix"]): row for row in result.rows}
    for name in ("yelp", "pokec", "amazon"):
        a_row = by_key[(name, "A")]
        # The sparse adjacency matrices of the large graphs put only a couple
        # of non-zeros in most tiles (the paper's key observation).
        few = a_row.get("frac_1", 0.0) + a_row.get("frac_2", 0.0) + a_row.get("frac_3~8", 0.0)
        assert few > 0.5
