"""EXC: exception hygiene — failures must be captured, never vanished.

The orchestration layers deliberately catch broad exceptions — but every
such site *captures* the failure (a traceback in the outcome, a ledger
line, a re-raise).  What the contracts forbid is the silent variant: a
bare ``except:`` (which also eats ``KeyboardInterrupt``/``SystemExit``)
or a broad handler whose body is only ``pass``, which turns a poisoned
result into a green run.

* ``EXC001`` — no bare ``except:`` anywhere in scoped layers.
* ``EXC002`` — no ``except Exception:``/``except BaseException:`` whose
  body is only ``pass``/``...``/``continue`` in scoped layers.

The ``obs`` layer's deliberate never-raise paths (telemetry must not
break a run) are allowlisted by layer; they catch *specific* exceptions
and log, but the layer owning that policy keeps the rule honest
elsewhere.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analyze.contracts import CheckConfig
from repro.analyze.findings import Finding
from repro.analyze.project import Project
from repro.analyze.rules.base import Rule, register

_BROAD = ("Exception", "BaseException")


def _is_broad(handler: ast.ExceptHandler) -> bool:
    node = handler.type
    if node is None:
        return True
    if isinstance(node, ast.Name):
        return node.id in _BROAD
    if isinstance(node, ast.Attribute):
        return node.attr in _BROAD
    return False


def _is_silent(handler: ast.ExceptHandler) -> bool:
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass) or isinstance(stmt, ast.Continue):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # a docstring/ellipsis is not handling
        return False
    return True


@register
class NoBareExcept(Rule):
    rule_id = "EXC001"
    family = "EXC"
    summary = "no bare 'except:' (it eats KeyboardInterrupt/SystemExit)"
    contract = "docs/architecture.md failure capture (PR 1 suite, PR 8 ledger)"

    def check(self, project: Project, config: CheckConfig) -> Iterator[Finding]:
        for module in project.modules:
            if module.layer not in config.hygiene_scope:
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ExceptHandler) and node.type is None:
                    yield self.finding(
                        module,
                        node.lineno,
                        "bare 'except:'; catch a named exception (broad "
                        "catches must capture the traceback into the outcome)",
                    )


@register
class NoSilentSwallow(Rule):
    rule_id = "EXC002"
    family = "EXC"
    summary = "no silently-swallowed broad exceptions in engine layers"
    contract = "docs/architecture.md failure capture (PR 1 suite, PR 8 ledger)"

    def check(self, project: Project, config: CheckConfig) -> Iterator[Finding]:
        for module in project.modules:
            if module.layer not in config.hygiene_scope:
                continue
            for node in ast.walk(module.tree):
                if (
                    isinstance(node, ast.ExceptHandler)
                    and _is_broad(node)
                    and node.type is not None  # bare is EXC001's finding
                    and _is_silent(node)
                ):
                    yield self.finding(
                        module,
                        node.lineno,
                        "broad exception silently swallowed ('except "
                        "Exception: pass'); capture the failure into the "
                        "outcome or narrow the exception type",
                    )
