"""Unit tests for the GROW configuration object."""

import pytest

from repro.accelerators.base import KB, AcceleratorConfig
from repro.core.config import GrowConfig


def test_defaults_match_table3():
    config = GrowConfig()
    assert config.arch.num_macs == 16
    assert config.sparse_buffer_bytes == 12 * KB
    assert config.hdn_id_list_bytes == 12 * KB
    assert config.hdn_cache_bytes == 512 * KB
    assert config.output_buffer_bytes == 2 * KB
    assert config.runahead_degree == 16
    assert config.arch.bandwidth_gbps == 128.0


def test_hdn_id_capacity_three_bytes_per_id():
    config = GrowConfig()
    assert config.hdn_id_capacity == (12 * KB) // 3 == 4096


def test_hdn_cache_rows_by_row_size():
    config = GrowConfig()
    assert config.hdn_cache_rows(rhs_row_bytes=512) == 1024
    assert config.hdn_cache_rows(rhs_row_bytes=128) == 4096  # capped by the ID list
    assert config.hdn_cache_rows(rhs_row_bytes=0) == 0


def test_hdn_cache_rows_disabled():
    config = GrowConfig(enable_hdn_cache=False)
    assert config.hdn_cache_rows(512) == 0


def test_effective_runahead():
    assert GrowConfig(runahead_degree=8).effective_runahead == 8
    assert GrowConfig(runahead_degree=64, ldn_table_entries=16).effective_runahead == 16
    assert GrowConfig(enable_runahead=False).effective_runahead == 1


def test_invalid_values_rejected():
    with pytest.raises(ValueError):
        GrowConfig(runahead_degree=0)
    with pytest.raises(ValueError):
        GrowConfig(num_pes=0)


def test_with_arch():
    arch = AcceleratorConfig(bandwidth_gbps=32.0)
    config = GrowConfig().with_arch(arch)
    assert config.arch.bandwidth_gbps == 32.0
    assert config.hdn_cache_bytes == 512 * KB


def test_scaled_for():
    config = GrowConfig().scaled_for(runahead_degree=4, num_pes=8)
    assert config.runahead_degree == 4
    assert config.num_pes == 8
    unchanged = GrowConfig().scaled_for()
    assert unchanged.runahead_degree == 16


def test_ablation_switches():
    config = GrowConfig().ablation(hdn_cache=False, runahead=False)
    assert config.enable_hdn_cache is False
    assert config.enable_runahead is False
    assert config.effective_runahead == 1
