"""The experiment suite: one registered function per paper table/figure.

Every experiment consumes an :class:`~repro.harness.config.ExperimentConfig`,
builds (cached) workload bundles for the configured datasets, runs the
relevant simulators and returns an
:class:`~repro.harness.report.ExperimentResult` whose rows mirror the paper's
series.  Absolute values differ from the paper (synthetic scaled datasets,
analytical timing); the orderings and approximate ratios are the reproduction
target — see EXPERIMENTS.md for the side-by-side record.
"""

from __future__ import annotations

import numpy as np

from repro.accelerators.gamma import GAMMASimulator
from repro.accelerators.gcnax import GCNAXSimulator
from repro.accelerators.matraptor import MatRaptorSimulator
from repro.analysis.breakdown import latency_breakdown
from repro.analysis.sparsity import characterize_dataset, layer_matrix_densities
from repro.analysis.tiles import effective_bandwidth_utilization, tile_nnz_bins
from repro.core.accelerator import GrowSimulator
from repro.core.multi_pe import MultiPEGrowSimulator
from repro.energy.area import GCNAX_AREA_MM2_40NM, grow_area_breakdown
from repro.energy.energy_model import estimate_energy
from repro.gcn.ops_count import layer_mac_counts
from repro.harness.config import ExperimentConfig
from repro.harness.registry import register
from repro.harness.report import ExperimentResult
from repro.harness.sweep import bandwidth_sweep_cycles, runahead_sweep_cycles
from repro.harness.workloads import WorkloadBundle, get_bundle


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------

def _grow_results(config: ExperimentConfig, bundle: WorkloadBundle, partitioned: bool = True, **overrides):
    simulator = GrowSimulator(config.grow_config(**overrides))
    plan = bundle.plan if partitioned else bundle.plan_unpartitioned
    return simulator.run_model(bundle.workloads, plan)


def _gcnax_results(config: ExperimentConfig, bundle: WorkloadBundle):
    return GCNAXSimulator(config.gcnax_config()).run_model(bundle.workloads)


def _geomean(values: list[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return float("nan")
    return float(np.exp(np.mean(np.log(values))))


# ----------------------------------------------------------------------
# Table I — dataset characterisation
# ----------------------------------------------------------------------

@register("table1_datasets")
def table1_datasets(config: ExperimentConfig) -> ExperimentResult:
    """Structure and key features of the (synthetic) graph datasets."""
    result = ExperimentResult(
        name="table1_datasets",
        paper_reference="Table I",
        description="Measured statistics of the synthetic dataset stand-ins",
        columns=[],
        notes=[
            "Node counts are the scaled synthetic sizes; densities and degree "
            "orderings mirror the published datasets (see DESIGN.md)."
        ],
    )
    for name in config.datasets:
        bundle = get_bundle(name, config)
        row = characterize_dataset(bundle.dataset, bundle.model).as_row()
        result.add_row(**row)
    return result


# ----------------------------------------------------------------------
# Figure 2 — MAC operations vs execution order
# ----------------------------------------------------------------------

@register("fig2_mac_ops")
def fig2_mac_ops(config: ExperimentConfig) -> ExperimentResult:
    """Normalised MAC counts of (AX)W vs A(XW) per dataset."""
    result = ExperimentResult(
        name="fig2_mac_ops",
        paper_reference="Figure 2",
        description="MAC operations of both execution orders, normalised to (AX)W",
        columns=["dataset", "macs_ax_w", "macs_a_xw", "a_xw_normalized"],
        notes=["A(XW) should never exceed (AX)W, matching the paper's choice of order."],
    )
    for name in config.datasets:
        bundle = get_bundle(name, config)
        totals_ax_w = 0
        totals_a_xw = 0
        for layer in bundle.model.layers:
            counts = layer_mac_counts(layer)
            totals_ax_w += counts.ax_then_w
            totals_a_xw += counts.a_then_xw
        result.add_row(
            dataset=name,
            macs_ax_w=totals_ax_w,
            macs_a_xw=totals_a_xw,
            a_xw_normalized=totals_a_xw / totals_ax_w if totals_ax_w else float("nan"),
        )
    return result


# ----------------------------------------------------------------------
# Figure 3 — matrix densities
# ----------------------------------------------------------------------

@register("fig3_density")
def fig3_density(config: ExperimentConfig) -> ExperimentResult:
    """Density of the sparse (A, X) and dense (XW, W) matrices per dataset."""
    result = ExperimentResult(
        name="fig3_density",
        paper_reference="Figure 3",
        description="Densities of A, X (layer 0), XW and W",
        columns=["dataset", "density_A", "density_X", "density_XW", "density_W"],
    )
    for name in config.datasets:
        bundle = get_bundle(name, config)
        densities = layer_matrix_densities(bundle.model, layer=0)
        result.add_row(
            dataset=name,
            density_A=densities["A"],
            density_X=densities["X"],
            density_XW=densities["XW"],
            density_W=densities["W"],
        )
    return result


# ----------------------------------------------------------------------
# Figure 5 — non-zeros per GCNAX tile
# ----------------------------------------------------------------------

@register("fig5_tile_nnz")
def fig5_tile_nnz(config: ExperimentConfig) -> ExperimentResult:
    """Distribution of non-zeros per tile for matrices A and X."""
    result = ExperimentResult(
        name="fig5_tile_nnz",
        paper_reference="Figure 5",
        description=(
            "Fraction of occupied GCNAX tiles per non-zero-count bin, for the "
            "adjacency matrix A (aggregation) and feature matrix X (combination)"
        ),
        columns=["dataset", "matrix"],
        notes=[f"Tile size {config.gcnax_tile}x{config.gcnax_tile}."],
    )
    tile = config.gcnax_tile
    for name in config.datasets:
        bundle = get_bundle(name, config)
        adjacency = bundle.workloads[0].aggregation.sparse
        features = bundle.workloads[0].combination.sparse
        bins_a = tile_nnz_bins(adjacency, tile, tile, bin_edges=(1, 2, 8, 16))
        bins_x = tile_nnz_bins(features, tile, tile, bin_edges=(1, 2, 8, 1024))
        result.add_row(dataset=name, matrix="A", **{f"frac_{k}": v for k, v in bins_a.items()})
        result.add_row(dataset=name, matrix="X", **{f"frac_{k}": v for k, v in bins_x.items()})
    return result


# ----------------------------------------------------------------------
# Figure 6 — effective bandwidth utilisation of GCNAX's sparse fetches
# ----------------------------------------------------------------------

@register("fig6_bandwidth_util")
def fig6_bandwidth_util(config: ExperimentConfig) -> ExperimentResult:
    """Effective DRAM bandwidth utilisation fetching A and X under 2-D tiling."""
    result = ExperimentResult(
        name="fig6_bandwidth_util",
        paper_reference="Figure 6",
        description=(
            "Fraction of DRAM bytes that are effectual when GCNAX fetches the "
            "sparse matrices with 64-byte minimum access granularity"
        ),
        columns=["dataset", "utilization_A", "utilization_X"],
    )
    tile = config.gcnax_tile
    for name in config.datasets:
        bundle = get_bundle(name, config)
        adjacency = bundle.workloads[0].aggregation.sparse
        features = bundle.workloads[0].combination.sparse
        result.add_row(
            dataset=name,
            utilization_A=effective_bandwidth_utilization(adjacency, tile, tile),
            utilization_X=effective_bandwidth_utilization(features, tile, tile),
        )
    return result


# ----------------------------------------------------------------------
# Figure 7 — GCNAX latency breakdown
# ----------------------------------------------------------------------

@register("fig7_gcnax_breakdown")
def fig7_gcnax_breakdown(config: ExperimentConfig) -> ExperimentResult:
    """Aggregation vs combination share of GCNAX's end-to-end latency."""
    result = ExperimentResult(
        name="fig7_gcnax_breakdown",
        paper_reference="Figure 7",
        description="Fraction of GCNAX inference latency spent in each phase",
        columns=["dataset", "aggregation_fraction", "combination_fraction"],
    )
    for name in config.datasets:
        bundle = get_bundle(name, config)
        breakdown = latency_breakdown(_gcnax_results(config, bundle))
        total = breakdown["total"] or 1.0
        result.add_row(
            dataset=name,
            aggregation_fraction=breakdown["aggregation"] / total,
            combination_fraction=breakdown["combination"] / total,
        )
    return result


# ----------------------------------------------------------------------
# Table IV — area breakdown
# ----------------------------------------------------------------------

@register("table4_area")
def table4_area(config: ExperimentConfig) -> ExperimentResult:
    """GROW area breakdown at 65 nm and scaled to 40 nm, vs GCNAX."""
    breakdown_65 = grow_area_breakdown(technology_nm=65)
    breakdown_40 = breakdown_65.scaled_to(40)
    result = ExperimentResult(
        name="table4_area",
        paper_reference="Table IV",
        description="Component area of GROW (65 nm measured-model, 40 nm scaled) and GCNAX",
        columns=["component", "area_mm2_65nm", "area_mm2_40nm"],
        notes=[
            f"GCNAX total (reported, 40 nm): {GCNAX_AREA_MM2_40NM} mm^2",
            f"GROW SRAM fraction of area: {breakdown_65.sram_fraction():.2f}",
        ],
    )
    for component, area_65 in breakdown_65.components.items():
        result.add_row(
            component=component,
            area_mm2_65nm=area_65,
            area_mm2_40nm=breakdown_40.components[component],
        )
    result.add_row(
        component="total",
        area_mm2_65nm=breakdown_65.total_mm2,
        area_mm2_40nm=breakdown_40.total_mm2,
    )
    return result


# ----------------------------------------------------------------------
# Figure 17 — HDN cache hit rate
# ----------------------------------------------------------------------

@register("fig17_hdn_hit_rate")
def fig17_hdn_hit_rate(config: ExperimentConfig) -> ExperimentResult:
    """HDN cache hit rate with and without graph partitioning."""
    result = ExperimentResult(
        name="fig17_hdn_hit_rate",
        paper_reference="Figure 17",
        description="HDN cache hit rate of GROW with and without graph partitioning",
        columns=["dataset", "hit_rate_without_gp", "hit_rate_with_gp"],
    )
    for name in config.datasets:
        bundle = get_bundle(name, config)
        with_gp = _grow_results(config, bundle, partitioned=True)
        without_gp = _grow_results(config, bundle, partitioned=False)
        result.add_row(
            dataset=name,
            hit_rate_without_gp=without_gp.extra["hdn_hit_rate"],
            hit_rate_with_gp=with_gp.extra["hdn_hit_rate"],
        )
    return result


# ----------------------------------------------------------------------
# Figure 18 — off-chip memory traffic
# ----------------------------------------------------------------------

@register("fig18_memory_traffic")
def fig18_memory_traffic(config: ExperimentConfig) -> ExperimentResult:
    """Total DRAM bytes read, normalised to GCNAX."""
    result = ExperimentResult(
        name="fig18_memory_traffic",
        paper_reference="Figure 18",
        description="DRAM read traffic of GROW (w/o and w/ graph partitioning) normalised to GCNAX",
        columns=["dataset", "gcnax", "grow_without_gp", "grow_with_gp"],
    )
    for name in config.datasets:
        bundle = get_bundle(name, config)
        gcnax = _gcnax_results(config, bundle)
        grow_gp = _grow_results(config, bundle, partitioned=True)
        grow_no = _grow_results(config, bundle, partitioned=False)
        base = gcnax.dram_read_bytes or 1
        result.add_row(
            dataset=name,
            gcnax=1.0,
            grow_without_gp=grow_no.dram_read_bytes / base,
            grow_with_gp=grow_gp.dram_read_bytes / base,
        )
    return result


# ----------------------------------------------------------------------
# Figure 19 — traffic reduction from HDN caching and partitioning
# ----------------------------------------------------------------------

@register("fig19_traffic_reduction")
def fig19_traffic_reduction(config: ExperimentConfig) -> ExperimentResult:
    """DRAM-traffic reduction of HDN caching and graph partitioning."""
    result = ExperimentResult(
        name="fig19_traffic_reduction",
        paper_reference="Figure 19",
        description=(
            "DRAM traffic reduction relative to GROW without HDN caching "
            "(higher is better)"
        ),
        columns=["dataset", "without_hdn_caching", "with_hdn_caching", "with_hdn_caching_and_gp"],
    )
    for name in config.datasets:
        bundle = get_bundle(name, config)
        no_cache = _grow_results(config, bundle, partitioned=False, enable_hdn_cache=False)
        cache_only = _grow_results(config, bundle, partitioned=False)
        cache_gp = _grow_results(config, bundle, partitioned=True)
        base = no_cache.total_dram_bytes or 1
        result.add_row(
            dataset=name,
            without_hdn_caching=1.0,
            with_hdn_caching=base / max(1, cache_only.total_dram_bytes),
            with_hdn_caching_and_gp=base / max(1, cache_gp.total_dram_bytes),
        )
    return result


# ----------------------------------------------------------------------
# Figure 20 — speedup and latency breakdown vs GCNAX
# ----------------------------------------------------------------------

@register("fig20_speedup")
def fig20_speedup(config: ExperimentConfig) -> ExperimentResult:
    """End-to-end speedup over GCNAX and the per-phase latency breakdown."""
    result = ExperimentResult(
        name="fig20_speedup",
        paper_reference="Figure 20",
        description=(
            "Speedup of GROW (w/o and w/ graph partitioning) over GCNAX, plus "
            "each design's aggregation/combination latency normalised to GCNAX"
        ),
        columns=[
            "dataset",
            "speedup_without_gp",
            "speedup_with_gp",
            "gcnax_aggregation",
            "gcnax_combination",
            "grow_aggregation",
            "grow_combination",
        ],
    )
    speedups = []
    for name in config.datasets:
        bundle = get_bundle(name, config)
        gcnax = _gcnax_results(config, bundle)
        grow_gp = _grow_results(config, bundle, partitioned=True)
        grow_no = _grow_results(config, bundle, partitioned=False)
        base = gcnax.total_cycles or 1.0
        speedups.append(grow_gp.speedup_over(gcnax))
        result.add_row(
            dataset=name,
            speedup_without_gp=grow_no.speedup_over(gcnax),
            speedup_with_gp=grow_gp.speedup_over(gcnax),
            gcnax_aggregation=gcnax.phase_cycles("aggregation") / base,
            gcnax_combination=gcnax.phase_cycles("combination") / base,
            grow_aggregation=grow_gp.phase_cycles("aggregation") / base,
            grow_combination=grow_gp.phase_cycles("combination") / base,
        )
    result.metadata["geomean_speedup_with_gp"] = _geomean(speedups)
    result.notes.append(
        f"Geometric-mean speedup of GROW (with G.P.) over GCNAX: {_geomean(speedups):.2f}x"
    )
    return result


# ----------------------------------------------------------------------
# Figure 21 — ablation study
# ----------------------------------------------------------------------

@register("fig21_ablation")
def fig21_ablation(config: ExperimentConfig) -> ExperimentResult:
    """Average speedup as GROW's optimisations are applied one by one."""
    result = ExperimentResult(
        name="fig21_ablation",
        paper_reference="Figure 21",
        description=(
            "Geometric-mean speedup over GCNAX when incrementally enabling "
            "HDN caching, runahead execution and graph partitioning"
        ),
        columns=["configuration", "geomean_speedup"],
    )
    per_config: dict[str, list[float]] = {
        "gcnax_baseline": [],
        "hdn_cache_only": [],
        "plus_runahead": [],
        "plus_graph_partitioning": [],
    }
    for name in config.datasets:
        bundle = get_bundle(name, config)
        gcnax_cycles = _gcnax_results(config, bundle).total_cycles
        cache_only = _grow_results(
            config, bundle, partitioned=False, enable_runahead=False
        ).total_cycles
        runahead = _grow_results(config, bundle, partitioned=False).total_cycles
        full = _grow_results(config, bundle, partitioned=True).total_cycles
        per_config["gcnax_baseline"].append(1.0)
        per_config["hdn_cache_only"].append(gcnax_cycles / cache_only)
        per_config["plus_runahead"].append(gcnax_cycles / runahead)
        per_config["plus_graph_partitioning"].append(gcnax_cycles / full)
    for configuration, values in per_config.items():
        result.add_row(configuration=configuration, geomean_speedup=_geomean(values))
    return result


# ----------------------------------------------------------------------
# Figure 22 — energy breakdown
# ----------------------------------------------------------------------

def _energy_for(result_label, accel_result, area_mm2: float) -> dict[str, float]:
    sram_events = {
        name: (capacity, accel_result.sram_access_bytes().get(name, 0))
        for name, capacity in accel_result.sram_capacities.items()
    }
    breakdown = estimate_energy(
        mac_operations=accel_result.total_mac_operations,
        dram_bytes=accel_result.total_dram_bytes,
        sram_access_events=sram_events,
        runtime_cycles=accel_result.total_cycles,
        area_mm2=area_mm2,
    )
    return breakdown.as_dict()


@register("fig22_energy")
def fig22_energy(config: ExperimentConfig) -> ExperimentResult:
    """Energy breakdown of GCNAX and GROW, normalised to GCNAX."""
    grow_area = grow_area_breakdown(technology_nm=40).total_mm2
    result = ExperimentResult(
        name="fig22_energy",
        paper_reference="Figure 22",
        description=(
            "Energy (MAC, register file, SRAM, DRAM, leakage) of GCNAX and GROW "
            "(w/o and w/ graph partitioning), normalised to GCNAX's total"
        ),
        columns=["dataset", "design", "mac", "register_file", "sram", "dram", "leakage", "total"],
    )
    efficiency = []
    for name in config.datasets:
        bundle = get_bundle(name, config)
        gcnax = _gcnax_results(config, bundle)
        grow_gp = _grow_results(config, bundle, partitioned=True)
        grow_no = _grow_results(config, bundle, partitioned=False)
        gcnax_energy = _energy_for("gcnax", gcnax, GCNAX_AREA_MM2_40NM)
        base = gcnax_energy["total"] or 1.0
        for design, accel_result, area in (
            ("gcnax", gcnax, GCNAX_AREA_MM2_40NM),
            ("grow_without_gp", grow_no, grow_area),
            ("grow_with_gp", grow_gp, grow_area),
        ):
            energy = _energy_for(design, accel_result, area)
            result.add_row(
                dataset=name,
                design=design,
                **{k: v / base for k, v in energy.items()},
            )
        grow_energy = _energy_for("grow", grow_gp, grow_area)
        efficiency.append(base / (grow_energy["total"] or 1.0))
    result.metadata["geomean_energy_efficiency_gain"] = _geomean(efficiency)
    result.notes.append(
        f"Geometric-mean energy-efficiency gain of GROW over GCNAX: {_geomean(efficiency):.2f}x"
    )
    return result


# ----------------------------------------------------------------------
# Figure 24 — PE scaling
# ----------------------------------------------------------------------

@register("fig24_pe_scaling")
def fig24_pe_scaling(config: ExperimentConfig) -> ExperimentResult:
    """Aggregation throughput as PEs (and bandwidth) scale from 1 to 16."""
    pe_counts = (1, 2, 4, 8, 16)
    result = ExperimentResult(
        name="fig24_pe_scaling",
        paper_reference="Figure 24",
        description="Aggregation throughput normalised to a single PE (proportional bandwidth)",
        columns=["dataset"] + [f"pe_{p}" for p in pe_counts],
    )
    for name in config.datasets:
        bundle = get_bundle(name, config)
        simulator = MultiPEGrowSimulator(config.grow_config())
        sweep = simulator.scaling_sweep(bundle.workloads[0], pe_counts=pe_counts, plan=bundle.plan)
        result.add_row(dataset=name, **{f"pe_{p}": sweep[p] for p in pe_counts})
    return result


# ----------------------------------------------------------------------
# Figure 25 — sensitivity studies
# ----------------------------------------------------------------------

@register("fig25a_runahead_sweep")
def fig25a_runahead_sweep(config: ExperimentConfig) -> ExperimentResult:
    """Throughput as the runahead degree is swept from 1 to 32."""
    degrees = (1, 2, 4, 8, 16, 32)
    result = ExperimentResult(
        name="fig25a_runahead_sweep",
        paper_reference="Figure 25(a)",
        description="GROW throughput normalised to 1-way runahead execution",
        columns=["dataset"] + [f"way_{d}" for d in degrees],
    )
    for name in config.datasets:
        bundle = get_bundle(name, config)
        cycles = runahead_sweep_cycles(config, bundle, degrees)
        base = cycles[1]
        result.add_row(dataset=name, **{f"way_{d}": base / cycles[d] for d in degrees})
    return result


@register("fig25b_bandwidth_sweep")
def fig25b_bandwidth_sweep(config: ExperimentConfig) -> ExperimentResult:
    """Sensitivity of GCNAX and GROW to off-chip memory bandwidth."""
    factors = (0.25, 0.5, 1.0, 2.0, 4.0)
    result = ExperimentResult(
        name="fig25b_bandwidth_sweep",
        paper_reference="Figure 25(b)",
        description=(
            "Throughput across relative bandwidth factors, each design normalised "
            "to its own nominal-bandwidth (1.0x) point"
        ),
        columns=["dataset", "design"] + [f"bw_{f}x" for f in factors],
        notes=[
            "A steeper slope means higher sensitivity to memory bandwidth; "
            "GCNAX should be steeper than GROW."
        ],
    )
    for name in config.datasets:
        bundle = get_bundle(name, config)
        for design in ("gcnax", "grow"):
            cycles = bandwidth_sweep_cycles(config, bundle, factors, design)
            base = cycles[1.0]
            result.add_row(
                dataset=name,
                design=design,
                **{f"bw_{f}x": base / cycles[f] for f in factors},
            )
    return result


# ----------------------------------------------------------------------
# Figure 26 — comparison against MatRaptor and GAMMA
# ----------------------------------------------------------------------

@register("fig26_spsp_comparison")
def fig26_spsp_comparison(config: ExperimentConfig) -> ExperimentResult:
    """Speedup of GROW and the sparse-sparse Gustavson baselines over GCNAX."""
    result = ExperimentResult(
        name="fig26_spsp_comparison",
        paper_reference="Figure 26",
        description="Speedup over GCNAX of MatRaptor, GAMMA and GROW",
        columns=["dataset", "gcnax", "matraptor", "gamma", "grow"],
    )
    grow_vs_matraptor = []
    grow_vs_gamma = []
    for name in config.datasets:
        bundle = get_bundle(name, config)
        gcnax = _gcnax_results(config, bundle)
        matraptor = MatRaptorSimulator(config.matraptor_config()).run_model(bundle.workloads)
        gamma = GAMMASimulator(config.gamma_config()).run_model(bundle.workloads)
        grow = _grow_results(config, bundle, partitioned=True)
        base = gcnax.total_cycles or 1.0
        result.add_row(
            dataset=name,
            gcnax=1.0,
            matraptor=base / matraptor.total_cycles,
            gamma=base / gamma.total_cycles,
            grow=base / grow.total_cycles,
        )
        grow_vs_matraptor.append(matraptor.total_cycles / grow.total_cycles)
        grow_vs_gamma.append(gamma.total_cycles / grow.total_cycles)
    result.metadata["geomean_speedup_vs_matraptor"] = _geomean(grow_vs_matraptor)
    result.metadata["geomean_speedup_vs_gamma"] = _geomean(grow_vs_gamma)
    result.notes.append(
        "GROW geomean speedup vs MatRaptor: "
        f"{_geomean(grow_vs_matraptor):.2f}x, vs GAMMA: {_geomean(grow_vs_gamma):.2f}x"
    )
    return result
