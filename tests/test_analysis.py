"""Unit tests for the characterisation/analysis helpers."""

import numpy as np
import pytest

from repro.accelerators.base import AcceleratorResult, PhaseStats
from repro.analysis.breakdown import latency_breakdown, normalized_breakdown, phase_fraction
from repro.analysis.sparsity import (
    characterize_dataset,
    layer_matrix_densities,
    partition_diagonal_fraction,
)
from repro.analysis.tiles import (
    csr_stream_utilization,
    effective_bandwidth_utilization,
    tile_nnz_bins,
)
from repro.graph.partition import metis_like_partition
from repro.sparse.convert import dense_to_csr


def test_characterize_dataset(small_dataset, small_model):
    row = characterize_dataset(small_dataset, small_model)
    assert row.name == "cora"
    assert row.num_nodes == small_dataset.num_nodes
    assert row.num_edges == small_dataset.graph.num_edges
    assert 0 < row.density_a < 1
    assert row.density_w == 1.0
    table_row = row.as_row()
    assert table_row["dataset"] == "cora"


def test_layer_matrix_densities(small_model):
    densities = layer_matrix_densities(small_model, layer=0)
    assert set(densities) == {"A", "X", "XW", "W"}
    assert densities["W"] == 1.0
    assert densities["A"] < densities["XW"]
    with pytest.raises(IndexError):
        layer_matrix_densities(small_model, layer=9)


def test_partition_diagonal_fraction(community_graph):
    partition = metis_like_partition(community_graph, 6, seed=0)
    fraction = partition_diagonal_fraction(community_graph, partition)
    assert 0.0 < fraction <= 1.0
    single = metis_like_partition(community_graph, 1)
    assert partition_diagonal_fraction(community_graph, single) == 1.0


def test_tile_nnz_bins_wrapper(small_csr):
    bins = tile_nnz_bins(small_csr, 4, 4)
    assert sum(bins.values()) == pytest.approx(1.0)


def test_effective_bandwidth_utilization_bounds():
    # One non-zero per tile: 12 effectual bytes of a 64-byte line.
    dense = np.zeros((64, 64))
    dense[0, 0] = 1.0
    dense[40, 40] = 1.0
    util = effective_bandwidth_utilization(dense_to_csr(dense), 32, 32)
    assert util == pytest.approx(12 / 64)
    assert effective_bandwidth_utilization(dense_to_csr(np.zeros((8, 8))), 4, 4) == 0.0


def test_dense_tiles_fully_utilized():
    dense = np.ones((32, 32))
    util = effective_bandwidth_utilization(dense_to_csr(dense), 32, 32)
    assert util > 0.95


def test_csr_stream_utilization_high():
    dense = np.zeros((16, 16))
    dense[np.arange(16), np.arange(16)] = 1.0
    assert csr_stream_utilization(dense_to_csr(dense)) == pytest.approx(192 / 192)
    assert csr_stream_utilization(dense_to_csr(np.zeros((4, 4)))) == 0.0


def _result_with(agg_cycles, comb_cycles):
    result = AcceleratorResult(accelerator="x", workload="w")
    result.phases = [
        PhaseStats(name="combination", compute_cycles=comb_cycles),
        PhaseStats(name="aggregation", compute_cycles=agg_cycles),
    ]
    return result


def test_latency_breakdown_and_fraction():
    result = _result_with(agg_cycles=300, comb_cycles=100)
    breakdown = latency_breakdown(result)
    assert breakdown["aggregation"] == 300
    assert breakdown["total"] == 400
    assert phase_fraction(result, "aggregation") == pytest.approx(0.75)
    assert phase_fraction(_result_with(0, 0), "aggregation") == 0.0


def test_normalized_breakdown():
    grow = _result_with(agg_cycles=100, comb_cycles=100)
    gcnax = _result_with(agg_cycles=300, comb_cycles=100)
    normalized = normalized_breakdown(grow, gcnax)
    assert normalized["aggregation"] == pytest.approx(0.25)
    assert normalized["combination"] == pytest.approx(0.25)
