"""Candidate evaluation: metrics, objectives and constraint filtering.

This module is the bridge between a design-space candidate (a plain dict of
parameter values, see :mod:`repro.dse.space`) and the simulators — reached
through the unified API facade (:mod:`repro.api`), whose shared session
memoises runs so overlapping sweep points and candidates are evaluated once
per process.  It

* binds candidate keys onto configurations — keys naming
  :class:`~repro.harness.config.ExperimentConfig` fields (``num_macs``,
  ``bandwidth_gbps``, ...) are applied there, every other key is passed as a
  simulator-config override (``GrowConfig`` / ``GCNAXConfig`` field);
* computes one metric dict per candidate — ``cycles``, ``dram_bytes``,
  ``energy_nj`` (via :mod:`repro.energy`) and ``area_mm2`` — summed over the
  experiment configuration's datasets;
* applies an :class:`ObjectiveSet`: which metrics to optimise in which
  direction, plus constraints (e.g. ``area_mm2 <= budget``) that mark
  candidates infeasible without discarding their cached metrics.

It also hosts the single-point sweep evaluators (``grow_cycles``,
``gcnax_cycles``, the bandwidth/runahead sweeps) that the paper's Figure
24/25 sensitivity experiments consume via :mod:`repro.harness.sweep`.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field, fields, replace
from typing import Any

from repro.accelerators.base import merge_sram_events
from repro.core.accelerator import GrowSimulator
from repro.core.preprocess import PreprocessPlan
from repro.energy.area import GCNAX_AREA_MM2_40NM, grow_area_breakdown, scale_area
from repro.energy.energy_model import estimate_energy
from repro.harness.config import ExperimentConfig
from repro.harness.workloads import WorkloadBundle, get_bundle

#: Metric names every evaluation produces, in report-column order.
METRIC_NAMES = ("cycles", "dram_bytes", "energy_nj", "area_mm2")


# -- sweep evaluators (the Figure 24/25 building blocks) -------------------
#
# Single-point evaluations route through the API facade via the same
# ``harness.experiments.common.simulate`` bridge the figure experiments use:
# the shared session memoises runs per process, so a sweep that revisits a
# point another experiment already paid for is free.  Hand-built bundles or
# plans — anything not reconstructible from ``(dataset, config)`` — fall
# back to direct simulation so the historical contract of these evaluators
# is preserved.  Imports happen at call time: ``repro.api`` and the
# experiment helpers bind onto harness configs, so module-level imports
# would create cycles.


def _is_canonical_bundle(config: ExperimentConfig, bundle: WorkloadBundle) -> bool:
    """Whether ``bundle`` is exactly what ``get_bundle`` builds for config."""
    from repro.graph import registry

    known = registry.known_dataset(bundle.name) or config.scenario_for(bundle.name)
    return bool(known) and get_bundle(bundle.name, config) is bundle


def grow_cycles(
    config: ExperimentConfig,
    bundle: WorkloadBundle,
    plan: PreprocessPlan | None = None,
    **grow_overrides,
) -> float:
    """Total GROW cycles for one bundle under config overrides."""
    canonical_plan = plan is None or plan is bundle.plan or plan is bundle.plan_unpartitioned
    if not canonical_plan or not _is_canonical_bundle(config, bundle):
        # A hand-built plan or bundle is not describable as a request.
        simulator = GrowSimulator(config.grow_config(**grow_overrides))
        return simulator.run_model(
            bundle.workloads, plan if plan is not None else bundle.plan
        ).total_cycles
    from repro.harness.experiments.common import simulate

    partitioned = plan is not bundle.plan_unpartitioned
    return simulate(
        config, bundle.name, "grow", partitioned=partitioned, **grow_overrides
    ).total_cycles


def gcnax_cycles(config: ExperimentConfig, bundle: WorkloadBundle, **gcnax_overrides) -> float:
    """Total GCNAX cycles for one bundle under config overrides."""
    if not _is_canonical_bundle(config, bundle):
        from repro.accelerators.gcnax import GCNAXSimulator

        simulator = GCNAXSimulator(config.gcnax_config(**gcnax_overrides))
        return simulator.run_model(bundle.workloads).total_cycles
    from repro.harness.experiments.common import simulate

    return simulate(config, bundle.name, "gcnax", **gcnax_overrides).total_cycles


def bandwidth_sweep_cycles(
    config: ExperimentConfig,
    bundle: WorkloadBundle,
    bandwidth_factors: tuple[float, ...],
    accelerator: str,
) -> dict[float, float]:
    """Total cycles of one accelerator across relative bandwidth factors.

    Factors are relative to the configuration's nominal bandwidth, matching
    the presentation of the paper's Figure 25(b) (each design normalised to
    its own mid-sweep point).
    """
    cycles: dict[float, float] = {}
    for factor in bandwidth_factors:
        swept = config.with_bandwidth(config.bandwidth_gbps * factor)
        if accelerator == "grow":
            cycles[factor] = grow_cycles(swept, bundle)
        elif accelerator == "gcnax":
            cycles[factor] = gcnax_cycles(swept, bundle)
        else:
            raise ValueError(f"unknown accelerator {accelerator!r}")
    return cycles


def runahead_sweep_cycles(
    config: ExperimentConfig,
    bundle: WorkloadBundle,
    degrees: tuple[int, ...],
) -> dict[int, float]:
    """Total GROW cycles across runahead degrees (Figure 25(a))."""
    return {
        degree: grow_cycles(
            config, bundle, runahead_degree=degree, ldn_table_entries=max(16, degree)
        )
        for degree in degrees
    }


# -- objectives and constraints --------------------------------------------


@dataclass(frozen=True)
class Objective:
    """One optimisation axis: a metric name and a direction."""

    metric: str
    direction: str = "min"

    def __post_init__(self) -> None:
        if self.direction not in ("min", "max"):
            raise ValueError(f"objective {self.metric!r}: direction must be 'min' or 'max'")


@dataclass(frozen=True)
class Constraint:
    """A feasibility bound on one metric (e.g. ``area_mm2 <= 6.0``)."""

    metric: str
    bound: float
    op: str = "<="

    def __post_init__(self) -> None:
        if self.op not in ("<=", ">="):
            raise ValueError(f"constraint on {self.metric!r}: op must be '<=' or '>='")

    def satisfied(self, metrics: dict[str, float]) -> bool:
        value = metrics[self.metric]
        return value <= self.bound if self.op == "<=" else value >= self.bound

    def __str__(self) -> str:
        return f"{self.metric} {self.op} {self.bound:g}"


@dataclass(frozen=True)
class ObjectiveSet:
    """The objectives being traded off plus the constraints filtering candidates."""

    objectives: tuple[Objective, ...]
    constraints: tuple[Constraint, ...] = ()

    def __post_init__(self) -> None:
        if not self.objectives:
            raise ValueError("an ObjectiveSet needs at least one objective")
        names = [objective.metric for objective in self.objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate objective metrics in {names}")

    @property
    def metric_names(self) -> tuple[str, ...]:
        return tuple(objective.metric for objective in self.objectives)

    @property
    def directions(self) -> tuple[str, ...]:
        return tuple(objective.direction for objective in self.objectives)

    def vector(self, metrics: dict[str, float]) -> tuple[float, ...]:
        """The candidate's position in objective space."""
        return tuple(float(metrics[objective.metric]) for objective in self.objectives)

    def violations(self, metrics: dict[str, float]) -> tuple[str, ...]:
        """Human-readable descriptions of every violated constraint."""
        return tuple(
            str(constraint)
            for constraint in self.constraints
            if not constraint.satisfied(metrics)
        )

    def fingerprint(self) -> dict[str, Any]:
        """JSON-safe description (part of report metadata)."""
        return {
            "objectives": [[o.metric, o.direction] for o in self.objectives],
            "constraints": [[c.metric, c.op, c.bound] for c in self.constraints],
        }


def default_objectives(area_budget_mm2: float | None = None) -> ObjectiveSet:
    """The standard trade-off: minimise cycles against area (65 nm mm^2)."""
    constraints = ()
    if area_budget_mm2 is not None:
        constraints = (Constraint("area_mm2", area_budget_mm2, "<="),)
    return ObjectiveSet(
        objectives=(Objective("cycles"), Objective("area_mm2")),
        constraints=constraints,
    )


# -- candidate binding and metric evaluation --------------------------------

#: Candidate keys applied at the ExperimentConfig level rather than passed as
#: simulator-config overrides.  ``datasets``/``num_nodes_override`` stay
#: owned by the experiment configuration: a search varies the design, not
#: the workload.
_EXPERIMENT_LEVEL_KEYS = frozenset(
    f.name for f in fields(ExperimentConfig) if f.name not in ("datasets", "num_nodes_override")
)


def bind_candidate(
    config: ExperimentConfig, candidate: dict
) -> tuple[ExperimentConfig, dict]:
    """Split a candidate into an updated config and simulator overrides."""
    experiment_level = {k: v for k, v in candidate.items() if k in _EXPERIMENT_LEVEL_KEYS}
    overrides = {k: v for k, v in candidate.items() if k not in _EXPERIMENT_LEVEL_KEYS}
    bound = replace(config, **experiment_level) if experiment_level else config
    return bound, overrides


#: Candidate keys that describe the *workload* rather than the design: they
#: become a synthetic-scenario definition (see ``repro.graph.registry``) that
#: replaces the configuration's dataset list, which is what makes scenario
#: parameters (graph size, degree, community structure, generator family)
#: ordinary searchable DSE dimensions.
_SCENARIO_KEYS = frozenset(
    (
        "generator",
        "num_nodes",
        "average_degree",
        "exponent",
        "num_communities",
        "intra_community_prob",
    )
)


def _smoke_bounded_nodes(num_nodes: int, config: ExperimentConfig) -> int:
    """Bound a scenario candidate's size under a shrunken (smoke) config.

    ``smoke_config`` promises that a smoke run never silently builds a
    full-size graph, so configurations that shrink their datasets also bound
    scenario candidates: sizes beyond twice the largest shrunken dataset are
    compressed with a square root, which keeps the searched size axis
    monotone and distinct while staying at CI scale.
    """
    if not config.num_nodes_override:
        return num_nodes
    cap = 2 * max(config.num_nodes_override.values())
    if num_nodes <= cap:
        return num_nodes
    return int(round(cap * math.sqrt(num_nodes / cap)))


def _bind_scenario(
    bound: ExperimentConfig, overrides: dict
) -> tuple[ExperimentConfig, dict]:
    """Split scenario keys out of a candidate's overrides.

    When present, they define a deterministic synthetic scenario (named by a
    digest of the parameters, so equal candidates share bundles and cache
    entries) that becomes the configuration's sole workload.
    """
    params = {key: overrides[key] for key in sorted(_SCENARIO_KEYS & set(overrides))}
    if not params:
        return bound, overrides
    from repro.graph import registry

    remaining = {k: v for k, v in overrides.items() if k not in _SCENARIO_KEYS}
    if "num_nodes" in params:
        params["num_nodes"] = _smoke_bounded_nodes(int(params["num_nodes"]), bound)
    digest = hashlib.sha256(
        json.dumps(params, sort_keys=True).encode()
    ).hexdigest()[:10]
    spec = registry.scenario_from_dict({"name": f"dse-scenario-{digest}", **params})
    bound = replace(
        bound, datasets=(spec.name,), scenarios=(spec,), num_nodes_override={}
    )
    return bound, remaining


def _provision_ldn(grow_overrides: dict) -> dict:
    """Size the LDN table to a searched runahead degree.

    The paper's Figure 25(a) convention (same as ``runahead_sweep_cycles``):
    ``ldn_table_entries`` only acts through ``min(degree, entries)``, so left
    at its default it would silently clamp degrees above 16 and make
    distinct candidates alias the same effective design.  Applied by every
    accelerator branch that accepts GROW overrides.
    """
    if "runahead_degree" in grow_overrides and "ldn_table_entries" not in grow_overrides:
        grow_overrides = {
            **grow_overrides,
            "ldn_table_entries": max(16, grow_overrides["runahead_degree"]),
        }
    return grow_overrides


def _accumulate(results) -> tuple[float, int, int, dict[str, tuple[int, int]]]:
    """Sum cycles / traffic / MACs / SRAM events over per-dataset results."""
    cycles = sum(result.total_cycles for result in results)
    dram_bytes = sum(result.total_dram_bytes for result in results)
    mac_operations = sum(result.total_mac_operations for result in results)
    return cycles, dram_bytes, mac_operations, merge_sram_events(results)


def candidate_metrics(
    accelerator: str, candidate: dict, config: ExperimentConfig
) -> dict[str, float]:
    """Evaluate one candidate: cycles, DRAM traffic, energy and area.

    Cycles, traffic and energy are summed over ``config.datasets`` (every
    dataset runs on the same candidate design); area is a property of the
    design alone.  Candidate keys naming scenario parameters (``num_nodes``,
    ``average_degree``, ``num_communities``, ...) replace the configuration's
    datasets with one synthetic scenario — the workload itself becomes a
    search dimension.  Raises on candidates the simulators reject (e.g. a
    runahead degree below 1) — the engine records those as failed
    evaluations.
    """
    from repro.harness.experiments.common import simulate

    bound, overrides = bind_candidate(config, candidate)
    bound, overrides = _bind_scenario(bound, overrides)
    if accelerator == "grow":
        grow_overrides = _provision_ldn(overrides)
        grow_config = bound.grow_config(**grow_overrides)
        results = [
            simulate(bound, name, "grow", **grow_overrides) for name in bound.datasets
        ]
        area_mm2 = grow_area_breakdown(
            num_macs=grow_config.arch.num_macs,
            sparse_buffer_bytes=grow_config.sparse_buffer_bytes,
            hdn_id_bytes=grow_config.hdn_id_list_bytes,
            hdn_cache_bytes=grow_config.hdn_cache_bytes,
            output_buffer_bytes=grow_config.output_buffer_bytes,
        ).total_mm2
    elif accelerator == "gcnax":
        results = [
            simulate(bound, name, "gcnax", **overrides) for name in bound.datasets
        ]
        # GCNAX's area is the published total (Table IV), scaled to 65 nm so
        # cross-accelerator frontiers compare like against like.
        area_mm2 = scale_area(GCNAX_AREA_MM2_40NM, from_nm=40, to_nm=65)
    elif accelerator == "scaleout":
        return _scaleout_candidate_metrics(bound, overrides)
    else:
        raise ValueError(f"unknown accelerator {accelerator!r}")

    cycles, dram_bytes, mac_operations, sram_events = _accumulate(results)
    energy = estimate_energy(
        mac_operations=mac_operations,
        dram_bytes=dram_bytes,
        sram_access_events=sram_events,
        runtime_cycles=cycles,
        area_mm2=area_mm2,
    )
    return {
        "cycles": float(cycles),
        "dram_bytes": float(dram_bytes),
        "energy_nj": float(energy.total_nj),
        "area_mm2": float(area_mm2),
    }


#: Candidate keys consumed by the scale-out system itself; everything else
#: in a ``"scaleout"`` candidate is a per-chip GROW override.
_SCALEOUT_KEYS = frozenset(
    ("num_chips", "topology", "link_bandwidth_gbps", "link_latency_cycles", "exchange")
)


def _scaleout_candidate_metrics(
    bound: ExperimentConfig, overrides: dict
) -> dict[str, float]:
    """Metrics of one multi-chip system candidate.

    ``cycles``/``dram_bytes``/``energy_nj`` sum the system results over the
    configuration's datasets (interconnect traffic is priced inside the
    engine's energy, not counted as DRAM); ``area_mm2`` is the chip area
    times the chip count.  Each per-dataset system run routes through the
    API facade's ``scaleout`` backend (the DSE engine caches whole candidate
    evaluations; the facade's memo additionally shares per-chip runs across
    candidates that only differ in link parameters).
    """
    from repro.api import ScaleOutSpec, SimRequest, get_session

    fabric = {key: overrides[key] for key in _SCALEOUT_KEYS if key in overrides}
    grow_overrides = _provision_ldn(
        {k: v for k, v in overrides.items() if k not in _SCALEOUT_KEYS}
    )
    spec = ScaleOutSpec(
        num_chips=int(fabric.get("num_chips", 1)),
        topology=fabric.get("topology", "ring"),
        link_bandwidth_gbps=float(fabric.get("link_bandwidth_gbps", 32.0)),
        link_latency_cycles=int(fabric.get("link_latency_cycles", 50)),
        exchange=fabric.get("exchange", "halo"),
    )
    session = get_session()
    runs = [
        session.run(
            SimRequest.from_experiment(
                bound, name, backend="scaleout", overrides=grow_overrides, fabric=spec
            )
        )
        for name in bound.datasets
    ]
    return {
        "cycles": float(sum(r.total_cycles for r in runs)),
        "dram_bytes": float(sum(r.dram_bytes for r in runs)),
        "energy_nj": float(sum(r.energy_nj for r in runs)),
        "area_mm2": float(runs[0].area_mm2 if runs else 0.0),
    }


# -- evaluation record ------------------------------------------------------


@dataclass
class Evaluation:
    """One evaluated candidate of a search.

    Attributes:
        candidate: the parameter-value dict.
        metrics: metric name to value (empty when the evaluation failed).
        feasible: every constraint satisfied (False for failed evaluations).
        violations: descriptions of the violated constraints.
        status: ``"ran"``, ``"cached"`` or ``"failed"``.
        error: formatted traceback when the evaluation failed.
        generation: 1-based generation the candidate was proposed in.
        seconds: wall-clock evaluation time (0.0 for cache hits).
    """

    candidate: dict
    metrics: dict[str, float] = field(default_factory=dict)
    feasible: bool = False
    violations: tuple[str, ...] = ()
    status: str = "ran"
    error: str | None = None
    generation: int = 0
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status in ("ran", "cached")
