"""DRAM channel model.

The paper's characterisation hinges on a single property of the DRAM
subsystem: the minimum access granularity is 64 bytes, so fetching fewer
effectual bytes than that wastes bandwidth (Figure 6).  The model here rounds
every access up to whole 64-byte lines, accumulates traffic into a
:class:`~repro.memory.traffic.TrafficCounter`, and converts bytes to cycles
at a configurable bandwidth so the accelerator simulators can derive
memory-bound latency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.memory.traffic import TrafficCounter

GB = 1024 ** 3


@dataclass(frozen=True)
class DRAMConfig:
    """Configuration of the off-chip memory channel.

    Attributes:
        bandwidth_gbps: peak bandwidth in GB/s (paper default 128 GB/s).
        access_granularity: minimum access size in bytes (64 B).
        frequency_ghz: accelerator clock used to convert bytes to cycles
            (paper targets 1 GHz).
        latency_cycles: fixed round-trip latency of one DRAM access, used by
            the runahead model to size how much latency must be hidden.
    """

    bandwidth_gbps: float = 128.0
    access_granularity: int = 64
    frequency_ghz: float = 1.0
    latency_cycles: int = 100

    @property
    def bytes_per_cycle(self) -> float:
        """Peak bytes the channel can deliver per accelerator clock cycle."""
        return self.bandwidth_gbps * GB / (self.frequency_ghz * 1e9)

    def scaled(self, bandwidth_gbps: float) -> "DRAMConfig":
        """Copy of this config with a different peak bandwidth."""
        return DRAMConfig(
            bandwidth_gbps=bandwidth_gbps,
            access_granularity=self.access_granularity,
            frequency_ghz=self.frequency_ghz,
            latency_cycles=self.latency_cycles,
        )


@dataclass
class DRAMModel:
    """Stateful DRAM channel: records traffic and converts it to cycles."""

    config: DRAMConfig = field(default_factory=DRAMConfig)
    traffic: TrafficCounter = field(default_factory=TrafficCounter)

    def lines_for(self, num_bytes: int) -> int:
        """Number of minimum-granularity lines needed to cover ``num_bytes``."""
        if num_bytes <= 0:
            return 0
        return math.ceil(num_bytes / self.config.access_granularity)

    def read(self, label: str, requested_bytes: int, contiguous: bool = True) -> int:
        """Issue a read of ``requested_bytes`` effectual bytes.

        When ``contiguous`` is True the bytes are assumed to be packed (a CSR
        stream, a dense row): the transfer is rounded up once.  When False,
        each effectual element is assumed to live in its own DRAM line (the
        scattered non-zeros of a nearly-empty tile), which is the worst case
        the paper's Figure 6 characterises for GCNAX's matrix A fetches.

        Returns the number of bytes actually transferred.
        """
        if requested_bytes <= 0:
            return 0
        granularity = self.config.access_granularity
        if contiguous:
            transferred = self.lines_for(requested_bytes) * granularity
        else:
            transferred = requested_bytes  # caller already accounts per-element
        self.traffic.record_read(label, requested_bytes, transferred)
        return transferred

    def read_scattered(self, label: str, num_elements: int, element_bytes: int) -> int:
        """Read ``num_elements`` elements that each live in a distinct DRAM line."""
        if num_elements <= 0:
            return 0
        requested = num_elements * element_bytes
        transferred = num_elements * self.config.access_granularity
        self.traffic.record_read(label, requested, transferred)
        return transferred

    def read_batch(self, label: str, requested_bytes: np.ndarray) -> int:
        """Issue one contiguous read per batch element, in a single reduction.

        Equivalent to ``sum(self.read(label, b) for b in requested_bytes)``:
        each element is rounded up to whole lines independently, and elements
        of zero (or negative) size — empty tiles, zero-nnz CSR row slices —
        contribute exactly zero bytes instead of a spurious minimum-size line.
        Returns the total bytes transferred.
        """
        requested_bytes = np.asarray(requested_bytes, dtype=np.int64)
        positive = requested_bytes[requested_bytes > 0]
        if positive.size == 0:
            return 0
        granularity = self.config.access_granularity
        transferred = -(-positive // granularity) * granularity
        self.traffic.record_read_batch(label, positive, transferred)
        return int(transferred.sum())

    def write(self, label: str, num_bytes: int) -> int:
        """Write ``num_bytes`` back to DRAM (rounded up to whole lines)."""
        if num_bytes <= 0:
            return 0
        transferred = self.lines_for(num_bytes) * self.config.access_granularity
        self.traffic.record_write(label, transferred)
        return transferred

    def cycles_for_bytes(self, num_bytes: int) -> float:
        """Cycles needed to move ``num_bytes`` at peak bandwidth."""
        if num_bytes <= 0:
            return 0.0
        return num_bytes / self.config.bytes_per_cycle

    def total_read_cycles(self) -> float:
        """Cycles to move all recorded read traffic at peak bandwidth."""
        return self.cycles_for_bytes(self.traffic.total_read_bytes())

    def total_cycles(self) -> float:
        """Cycles to move all recorded traffic (reads + writes) at peak bandwidth."""
        return self.cycles_for_bytes(self.traffic.total_bytes())

    def reset(self) -> None:
        """Clear all recorded traffic."""
        self.traffic = TrafficCounter()
