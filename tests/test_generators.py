"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph.generators import (
    chung_lu_graph,
    erdos_renyi_graph,
    powerlaw_cluster_graph,
    powerlaw_degree_sequence,
)


def test_degree_sequence_mean_close_to_target(rng):
    degrees = powerlaw_degree_sequence(2000, average_degree=10.0, rng=rng)
    assert degrees.mean() == pytest.approx(10.0, rel=0.35)
    assert degrees.min() >= 1


def test_degree_sequence_respects_cap(rng):
    degrees = powerlaw_degree_sequence(500, 8.0, rng=rng, max_degree=20)
    assert degrees.max() <= 20


def test_degree_sequence_rejects_bad_inputs(rng):
    with pytest.raises(ValueError):
        powerlaw_degree_sequence(0, 5.0, rng=rng)
    with pytest.raises(ValueError):
        powerlaw_degree_sequence(10, -1.0, rng=rng)


def test_degree_sequence_is_skewed(rng):
    degrees = powerlaw_degree_sequence(5000, 10.0, exponent=2.0, rng=rng)
    assert degrees.max() > 5 * degrees.mean()


def test_chung_lu_hits_target_degree(rng):
    graph = chung_lu_graph(800, average_degree=12.0, rng=rng)
    assert graph.average_degree == pytest.approx(12.0, rel=0.15)


def test_chung_lu_no_self_loops(rng):
    graph = chung_lu_graph(300, 6.0, rng=rng)
    assert not np.any(graph.src == graph.dst)


def test_chung_lu_records_communities(rng):
    graph = chung_lu_graph(400, 6.0, num_communities=4, rng=rng)
    assert graph.communities is not None
    assert graph.communities.size == 400
    assert set(np.unique(graph.communities)).issubset(set(range(4)))


def test_chung_lu_community_structure(community_graph):
    src, dst = community_graph.src, community_graph.dst
    labels = community_graph.communities
    intra = float((labels[src] == labels[dst]).mean())
    # With intra_community_prob=0.85 most surviving edges are intra-community.
    assert intra > 0.6


def test_chung_lu_is_power_law(community_graph):
    degrees = community_graph.degrees()
    assert degrees.max() > 4 * degrees.mean()


def test_chung_lu_reproducible():
    g1 = chung_lu_graph(200, 5.0, rng=np.random.default_rng(42))
    g2 = chung_lu_graph(200, 5.0, rng=np.random.default_rng(42))
    np.testing.assert_array_equal(g1.src, g2.src)
    np.testing.assert_array_equal(g1.dst, g2.dst)


def test_chung_lu_max_degree_cap(rng):
    graph = chung_lu_graph(1000, 10.0, exponent=1.8, rng=rng)
    # The default cap keeps the heaviest hub well below the full graph.
    assert graph.degrees().max() < 0.5 * graph.num_nodes


def test_erdos_renyi_degree(rng):
    graph = erdos_renyi_graph(500, average_degree=8.0, rng=rng)
    assert graph.average_degree == pytest.approx(8.0, rel=0.25)


def test_erdos_renyi_not_heavily_skewed(rng):
    graph = erdos_renyi_graph(2000, 10.0, rng=rng)
    degrees = graph.degrees()
    assert degrees.max() < 4 * degrees.mean()


def test_powerlaw_cluster_graph_basic(rng):
    graph = powerlaw_cluster_graph(200, average_degree=6.0, rng=rng)
    assert graph.num_nodes == 200
    assert graph.num_edges > 0
    assert graph.degrees().max() > graph.degrees().mean()


def test_powerlaw_cluster_rejects_tiny_graphs(rng):
    with pytest.raises(ValueError):
        powerlaw_cluster_graph(2, average_degree=10.0, rng=rng)
