"""The repository's contracts, as data: what the rules enforce.

This module is the single place where ``docs/architecture.md`` prose
becomes machine-checkable configuration.  The rule implementations in
``repro.analyze.rules`` are generic over a :class:`CheckConfig`; the
:data:`DEFAULT_CONFIG` below encodes this repo's layer DAG, determinism
scope and hygiene scope.  The analyzer's tests build fixture trees whose
first-level package names reuse these layer names, so the same config
exercises every rule.

Layer names are the first-level packages under the scan root
(``src/repro``): ``obs``, ``sparse``, ``graph``, ..., plus ``""`` for the
root-level modules (``__init__``, ``__main__``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: The top package itself (``import repro`` — e.g. the cache's source-tree
#: hashing); distinct from any first-level layer name.
ROOT = "<root>"

#: Packages that simulate or define cache identity: a wall-clock read, an
#: unseeded RNG or an environment read here can silently poison
#: reproducibility and cache keys.  ``obs``/``bench``/``analyze`` are
#: allowlisted *by layer*: they measure and report, they never feed results
#: or keys.  (The orchestration layers — harness/dse/scaleout/api — are in
#: scope: their deliberate wall-time *metadata* reads carry inline
#: ``# repro: allow(...)`` suppressions instead, so each one is justified
#: where it happens.)
DETERMINISM_SCOPE = frozenset(
    {
        "sparse", "graph", "gcn", "memory", "energy", "accelerators",
        "core", "analysis", "harness", "dse", "scaleout", "api", "",
    }
)

#: The pure engine layers: these must never import the orchestration
#: stack at *any* scope (module or call time) — engines are driven by the
#: harness and the facade, never the other way around.
ENGINE_LAYERS = frozenset(
    {"sparse", "graph", "gcn", "memory", "energy", "accelerators", "core", "analysis"}
)

#: What engines must never import (LAY004).  ``api`` is deliberately
#: absent: the facade is documented as importable from any layer (its
#: module scope depends only on ``graph``).
ORCHESTRATION_LAYERS = frozenset({"harness", "dse", "scaleout", "bench"})


#: Request-dataclass fields documented as *canonicalised away*: fields a
#: backend may read even though ``canonical_json()`` deliberately omits
#: them (none today — every ``SimRequest`` field is part of the cache
#: identity).  Adding a name here is a documented decision that two
#: requests differing only in that field *should* share a cache entry;
#: KEY003 holds backends to exactly this list.
CACHE_KEY_EXEMPT_FIELDS: frozenset[str] = frozenset()


@dataclass(frozen=True)
class CheckConfig:
    """Everything rule implementations parameterise over.

    Attributes:
        layer_deps: per-layer allowed *module-scope* import targets
            (layer names, plus :data:`ROOT` for ``import <top>``).
            ``obs`` is implicitly importable from every layer — it is the
            stdlib-only telemetry substrate at the bottom of the stack.
        stdlib_only_layers: layers whose modules may import only the
            standard library (and their own layer) at any scope.
        stdlib_only_exempt: per-layer module basenames exempt from the
            stdlib-only rule with the internal targets each may reach
            lazily (the documented consumer split: ``obs.trend`` and
            ``obs.dashboard`` may import ``bench``).
        determinism_scope: layers where clock/RNG/env reads are flagged.
        engine_layers: layers that must never import orchestration.
        orchestration_layers: the forbidden-at-any-scope target layers.
        hygiene_scope: layers where silent exception swallowing is flagged
            (bare ``except:`` is flagged everywhere).
        request_param: the parameter name that carries the request through
            backend code paths; KEY003 tracks ``<request_param>.<field>``
            reads in a backend's reachable set.
        cache_key_exempt_fields: request fields documented as canonicalised
            away — readable by backends without appearing in
            ``canonical_json()`` (see :data:`CACHE_KEY_EXEMPT_FIELDS`).
    """

    layer_deps: dict[str, frozenset[str]] = field(default_factory=dict)
    stdlib_only_layers: frozenset[str] = frozenset()
    stdlib_only_exempt: dict[str, frozenset[str]] = field(default_factory=dict)
    determinism_scope: frozenset[str] = DETERMINISM_SCOPE
    engine_layers: frozenset[str] = ENGINE_LAYERS
    orchestration_layers: frozenset[str] = ORCHESTRATION_LAYERS
    hygiene_scope: frozenset[str] = DETERMINISM_SCOPE
    request_param: str = "request"
    cache_key_exempt_fields: frozenset[str] = CACHE_KEY_EXEMPT_FIELDS


def _deps(*layers: str) -> frozenset[str]:
    return frozenset(layers)


#: The layer DAG of ``docs/architecture.md`` ("Layering"), as allowed
#: module-scope dependencies.  ``obs`` is importable from everywhere and
#: therefore not listed; sanctioned back-edges (harness -> dse for
#: experiment registration, scaleout -> api for chip-slice requests) are
#: spelled out rather than inferred.
LAYER_DEPS: dict[str, frozenset[str]] = {
    "obs": _deps(),
    "analyze": _deps(),
    "sparse": _deps(),
    "memory": _deps(),
    "energy": _deps(),
    "graph": _deps("sparse"),
    "gcn": _deps("sparse", "graph"),
    "accelerators": _deps("sparse", "graph", "gcn", "memory"),
    "core": _deps("sparse", "graph", "gcn", "accelerators", "memory"),
    "analysis": _deps("sparse", "graph", "gcn", "accelerators"),
    "api": _deps("graph"),
    "harness": _deps(
        "sparse", "graph", "gcn", "memory", "energy", "accelerators",
        "core", "analysis", "api", "dse", ROOT,
    ),
    "dse": _deps(
        "sparse", "graph", "gcn", "memory", "energy", "accelerators",
        "core", "analysis", "api", "harness",
    ),
    "scaleout": _deps(
        "sparse", "graph", "gcn", "memory", "energy", "accelerators",
        "core", "api", "harness",
    ),
    "bench": _deps("api", "dse", "graph", "harness", ROOT),
    # Root-level modules (__init__, __main__) compose everything.
    "": _deps(
        "sparse", "graph", "gcn", "memory", "energy", "accelerators",
        "core", "analysis", "api", "harness", "dse", "scaleout", "bench",
        "analyze", ROOT,
    ),
}

#: ``obs`` substrate and the analyzer itself are stdlib-only: importable
#: from any layer (or usable with no third-party deps at all) without
#: creating cycles.  The documented consumer split exempts ``obs.trend``
#: and ``obs.dashboard``, which may lazily import the bench layer.
STDLIB_ONLY_LAYERS = frozenset({"obs", "analyze"})
STDLIB_ONLY_EXEMPT: dict[str, frozenset[str]] = {
    "obs": frozenset({"trend", "dashboard"}),
}

DEFAULT_CONFIG = CheckConfig(
    layer_deps=LAYER_DEPS,
    stdlib_only_layers=STDLIB_ONLY_LAYERS,
    stdlib_only_exempt=STDLIB_ONLY_EXEMPT,
)
