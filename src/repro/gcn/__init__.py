"""GCN model substrate: features, layers, reference execution, MAC counting."""

from repro.gcn.features import generate_feature_matrix, generate_weight_matrix
from repro.gcn.layer import GCNLayer, GCNModel, build_model_for_dataset
from repro.gcn.ops_count import (
    ExecutionOrder,
    layer_mac_counts,
    mac_count_a_xw,
    mac_count_ax_w,
    model_mac_counts,
)
from repro.gcn.reference import gcn_layer_forward, gcn_model_forward, relu

__all__ = [
    "generate_feature_matrix",
    "generate_weight_matrix",
    "GCNLayer",
    "GCNModel",
    "build_model_for_dataset",
    "ExecutionOrder",
    "layer_mac_counts",
    "mac_count_ax_w",
    "mac_count_a_xw",
    "model_mac_counts",
    "gcn_layer_forward",
    "gcn_model_forward",
    "relu",
]
