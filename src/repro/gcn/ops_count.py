"""MAC-operation counting for the two GCN execution orders.

Paper Figure 2 compares the number of effectual multiply-accumulate
operations of ``(A X) W`` versus ``A (X W)``.  Only non-zero operands
contribute MACs, so the counts depend on the sparsity of A and X and on the
density of the intermediate products.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.gcn.layer import GCNLayer, GCNModel
from repro.sparse.csr import CSRMatrix


class ExecutionOrder(str, Enum):
    """The two possible orders of the two-stage GCN matrix multiplication."""

    AX_THEN_W = "(AX)W"
    A_THEN_XW = "A(XW)"


def _spmm_macs(lhs_nnz: int, rhs_cols: int) -> int:
    """MACs of a sparse-LHS x dense-RHS product: one per non-zero per output column."""
    return int(lhs_nnz) * int(rhs_cols)


def _spsp_macs(lhs: CSRMatrix, rhs: CSRMatrix) -> int:
    """MACs of a sparse-sparse product: pairs of non-zeros that actually meet.

    For every non-zero ``A[i, k]``, one MAC is performed for every non-zero
    in row ``k`` of the RHS.
    """
    rhs_row_nnz = rhs.row_nnz()
    lhs_col_counts = np.bincount(lhs.indices, minlength=lhs.n_cols)
    return int(np.dot(lhs_col_counts, rhs_row_nnz))


def mac_count_ax_w(layer: GCNLayer) -> int:
    """MAC count of the ``(A X) W`` execution order.

    Stage 1 multiplies sparse A by (possibly sparse) X; stage 2 multiplies the
    resulting dense AX by the dense W.
    """
    stage1 = _spsp_macs(layer.adjacency, layer.features_csr)
    # AX is effectively dense: every row of it feeds the dense GEMM with W.
    stage2 = layer.num_nodes * layer.in_features * layer.out_features
    return stage1 + stage2


def mac_count_a_xw(layer: GCNLayer) -> int:
    """MAC count of the ``A (X W)`` execution order (the one the paper adopts).

    Stage 1 (combination) multiplies sparse-or-dense X by dense W; stage 2
    (aggregation) multiplies sparse A by the dense XW.
    """
    stage1 = _spmm_macs(layer.features_csr.nnz, layer.out_features)
    stage2 = _spmm_macs(layer.adjacency.nnz, layer.out_features)
    return stage1 + stage2


@dataclass(frozen=True)
class LayerMacCounts:
    """MAC counts of one layer under both execution orders."""

    layer_name: str
    ax_then_w: int
    a_then_xw: int

    @property
    def ratio(self) -> float:
        """A(XW) MACs normalised to (AX)W MACs (the Figure 2 bar heights)."""
        if self.ax_then_w == 0:
            return float("nan")
        return self.a_then_xw / self.ax_then_w


def layer_mac_counts(layer: GCNLayer) -> LayerMacCounts:
    """MAC counts of a single layer under both execution orders."""
    return LayerMacCounts(
        layer_name=layer.name,
        ax_then_w=mac_count_ax_w(layer),
        a_then_xw=mac_count_a_xw(layer),
    )


def model_mac_counts(model: GCNModel) -> LayerMacCounts:
    """Aggregate MAC counts of a whole model under both execution orders."""
    ax_w = sum(mac_count_ax_w(layer) for layer in model.layers)
    a_xw = sum(mac_count_a_xw(layer) for layer in model.layers)
    return LayerMacCounts(layer_name=model.name, ax_then_w=ax_w, a_then_xw=a_xw)
