"""Unit tests for GCN layers and models."""

import numpy as np
import pytest

from repro.gcn.layer import GCNLayer, GCNModel, build_model_for_dataset
from repro.gcn.reference import gcn_layer_forward, layer_output_reference, relu
from repro.sparse.convert import dense_to_csr


@pytest.fixture
def toy_layer(rng):
    adjacency = dense_to_csr(np.array([[0.5, 0.5, 0.0], [0.5, 0.5, 0.0], [0.0, 0.0, 1.0]]))
    features = rng.standard_normal((3, 4))
    weight = rng.standard_normal((4, 2))
    return GCNLayer(adjacency=adjacency, features=features, weight=weight, name="toy")


def test_layer_shapes(toy_layer):
    assert toy_layer.num_nodes == 3
    assert toy_layer.in_features == 4
    assert toy_layer.out_features == 2


def test_layer_forward_matches_reference(toy_layer):
    expected = relu(
        toy_layer.adjacency.to_dense() @ toy_layer.features @ toy_layer.weight
    )
    np.testing.assert_allclose(toy_layer.forward(), expected)
    np.testing.assert_allclose(layer_output_reference(toy_layer), expected)


def test_layer_forward_without_relu(toy_layer):
    toy_layer.apply_relu = False
    expected = toy_layer.adjacency.to_dense() @ toy_layer.features @ toy_layer.weight
    np.testing.assert_allclose(toy_layer.forward(), expected)


def test_combination_product(toy_layer):
    np.testing.assert_allclose(toy_layer.combination(), toy_layer.features @ toy_layer.weight)


def test_features_csr_cached(toy_layer):
    first = toy_layer.features_csr
    assert toy_layer.features_csr is first
    assert first.nnz == int((toy_layer.features != 0).sum())


def test_feature_density(toy_layer):
    assert toy_layer.feature_density == pytest.approx((toy_layer.features != 0).mean())


def test_dimension_validation(rng):
    adjacency = dense_to_csr(np.eye(3))
    with pytest.raises(ValueError):
        GCNLayer(adjacency=adjacency, features=rng.standard_normal((4, 2)), weight=rng.standard_normal((2, 2)))
    with pytest.raises(ValueError):
        GCNLayer(adjacency=adjacency, features=rng.standard_normal((3, 2)), weight=rng.standard_normal((3, 2)))
    non_square = dense_to_csr(np.ones((3, 4)))
    with pytest.raises(ValueError):
        GCNLayer(adjacency=non_square, features=rng.standard_normal((3, 2)), weight=rng.standard_normal((2, 2)))


def test_gcn_layer_forward_helper(toy_layer):
    out = gcn_layer_forward(toy_layer.adjacency, toy_layer.features, toy_layer.weight)
    np.testing.assert_allclose(out, toy_layer.forward())


def test_relu():
    np.testing.assert_array_equal(relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0])


def test_model_validation(toy_layer, rng):
    bad_next = GCNLayer(
        adjacency=toy_layer.adjacency,
        features=rng.standard_normal((3, 5)),
        weight=rng.standard_normal((5, 3)),
        name="bad",
    )
    with pytest.raises(ValueError):
        GCNModel(layers=[toy_layer, bad_next])
    with pytest.raises(ValueError):
        GCNModel(layers=[])


def test_model_forward_threads_activations(small_model):
    output = small_model.forward()
    assert output.shape == (small_model.num_nodes, small_model.layers[-1].out_features)
    assert np.isfinite(output).all()


def test_build_model_for_dataset(small_dataset, small_model):
    assert small_model.num_layers == small_dataset.num_layers
    assert small_model.num_nodes == small_dataset.num_nodes
    widths = small_dataset.feature_lengths
    for i, layer in enumerate(small_model.layers):
        assert layer.in_features == widths[i]
        assert layer.out_features == widths[i + 1]


def test_build_model_feature_densities(small_dataset, small_model):
    # Layer 0's measured density tracks the published X(0) density.
    assert small_model.layers[0].feature_density == pytest.approx(
        small_dataset.density_x0, abs=0.02
    )
    assert small_model.layers[1].feature_density == pytest.approx(
        small_dataset.density_x1, abs=0.05
    )


def test_build_model_reproducible(small_dataset):
    a = build_model_for_dataset(small_dataset, seed=11)
    b = build_model_for_dataset(small_dataset, seed=11)
    np.testing.assert_array_equal(a.layers[0].weight, b.layers[0].weight)


def test_final_layer_has_no_relu(small_model):
    assert small_model.layers[-1].apply_relu is False
    assert small_model.layers[0].apply_relu is True
