"""Cross-module property-based tests on system-level invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerators.base import AcceleratorConfig
from repro.accelerators.gcnax import GCNAXConfig, GCNAXSimulator
from repro.accelerators.workload import SpDeGemmPhase
from repro.core.accelerator import GrowSimulator
from repro.core.config import GrowConfig
from repro.core.preprocess import GrowPreprocessor
from repro.core.runahead import RunaheadModel
from repro.graph.generators import chung_lu_graph
from repro.graph.partition import metis_like_partition, partition_edge_cut
from repro.sparse.convert import dense_to_csr


def _random_phase(seed: int, n_rows: int, n_cols: int, density: float, rhs_cols: int) -> SpDeGemmPhase:
    rng = np.random.default_rng(seed)
    lhs = (rng.random((n_rows, n_cols)) < density) * rng.standard_normal((n_rows, n_cols))
    rhs = rng.standard_normal((n_cols, rhs_cols))
    return SpDeGemmPhase(name="aggregation", sparse=dense_to_csr(lhs), dense_shape=rhs.shape, dense=rhs)


@given(
    seed=st.integers(0, 1000),
    n=st.integers(8, 40),
    density=st.floats(0.01, 0.5),
    rhs_cols=st.integers(1, 16),
)
@settings(max_examples=30, deadline=None)
def test_grow_traffic_and_compute_invariants(seed, n, density, rhs_cols):
    """For any random aggregation phase: requested <= transferred, MACs exact,
    hits + misses == nnz, and the functional output matches the reference."""
    phase = _random_phase(seed, n, n, density, rhs_cols)
    simulator = GrowSimulator(GrowConfig(arch=AcceleratorConfig(bandwidth_gbps=16)))
    stats = simulator.run_phase(phase)
    assert stats.requested_read_bytes <= stats.dram_read_bytes
    assert stats.mac_operations == phase.sparse.nnz * rhs_cols
    assert stats.extra["hdn_hits"] + stats.extra["hdn_misses"] == phase.sparse.nnz
    np.testing.assert_allclose(simulator.compute_output(phase), phase.reference_output(), atol=1e-9)


@given(
    seed=st.integers(0, 1000),
    n=st.integers(8, 40),
    density=st.floats(0.01, 0.5),
    rhs_cols=st.integers(1, 16),
)
@settings(max_examples=30, deadline=None)
def test_gcnax_traffic_invariants(seed, n, density, rhs_cols):
    """GCNAX never transfers less than it requests and always covers the output."""
    phase = _random_phase(seed, n, n, density, rhs_cols)
    stats = GCNAXSimulator(GCNAXConfig(arch=AcceleratorConfig(bandwidth_gbps=16))).run_phase(phase)
    assert stats.dram_read_bytes >= stats.requested_read_bytes
    assert stats.dram_write_bytes >= phase.output_bytes
    assert 0.0 <= stats.extra["sparse_bandwidth_utilization"] <= 1.0


@given(
    degree=st.integers(1, 64),
    latency=st.integers(1, 400),
    rows=st.integers(0, 10_000),
)
@settings(max_examples=60, deadline=None)
def test_runahead_stalls_bounded(degree, latency, rows):
    """Exposed stalls are non-negative, bounded by the 1-way case, and scale
    inversely with the effective window."""
    model = RunaheadModel(degree=degree, dram_latency_cycles=latency, ldn_entries=max(16, degree))
    stalls = model.exposed_stall_cycles(rows)
    one_way = RunaheadModel(degree=1, dram_latency_cycles=latency).exposed_stall_cycles(rows)
    assert 0.0 <= stalls <= one_way + 1e-9
    if rows > 0:
        assert stalls >= rows * latency / 64 - 1e-9


@given(
    seed=st.integers(0, 50),
    num_clusters=st.integers(2, 8),
)
@settings(max_examples=15, deadline=None)
def test_partition_always_valid_and_better_than_random(seed, num_clusters):
    """Any partition of any generated graph covers all nodes and cuts no more
    edges than a random assignment (on average)."""
    rng = np.random.default_rng(seed)
    graph = chung_lu_graph(
        num_nodes=int(rng.integers(60, 200)),
        average_degree=float(rng.uniform(3, 10)),
        num_communities=num_clusters,
        intra_community_prob=0.8,
        rng=rng,
    )
    partition = metis_like_partition(graph, num_clusters, seed=seed)
    assert partition.assignment.size == graph.num_nodes
    assert np.sort(partition.permutation).tolist() == list(range(graph.num_nodes))
    # "On average": a single random assignment can get lucky on small graphs,
    # so compare against the mean cut of several random assignments — and on
    # small dense graphs split into many clusters the heuristic can land a few
    # per cent above that mean, so allow a 10% margin.  The discriminative
    # cases (few clusters, clustered graph) beat random by 2-3x.
    random_rng = np.random.default_rng(seed + 1)
    random_cut = np.mean(
        [
            partition_edge_cut(
                graph, random_rng.integers(0, num_clusters, graph.num_nodes)
            )
            for _ in range(5)
        ]
    )
    assert partition_edge_cut(graph, partition.assignment) <= random_cut * 1.10


@given(seed=st.integers(0, 50), capacity=st.integers(1, 64))
@settings(max_examples=20, deadline=None)
def test_hdn_plan_hit_rate_monotone_in_capacity(seed, capacity):
    """A larger HDN list can never lower the (single-cluster) hit rate."""
    rng = np.random.default_rng(seed)
    graph = chung_lu_graph(100, 6.0, rng=rng)
    adjacency = graph.adjacency()
    small_plan = GrowPreprocessor(hdn_list_capacity=capacity).plan_without_partitioning(adjacency)
    big_plan = GrowPreprocessor(hdn_list_capacity=capacity * 2).plan_without_partitioning(adjacency)
    columns = adjacency.indices
    small_hits = np.isin(columns, small_plan.hdn_lists[0]).sum()
    big_hits = np.isin(columns, big_plan.hdn_lists[0]).sum()
    assert big_hits >= small_hits
