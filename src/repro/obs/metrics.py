"""The metrics registry: counters, gauges and duration histograms.

One process-wide :class:`MetricsRegistry` (``repro.obs.metrics``) accumulates
named measurements from every engine — memo/disk cache hits in ``Session``,
batch dedup counts, suite/DSE/scale-out progress, inter-chip traffic.  The
registry is always live (an ``inc`` is a dict update under a lock, cheap
enough to leave on unconditionally); snapshots ride along in trace exports
and the ``repro trace`` summary derives cache hit rates from them.

Histograms record count/total/min/max rather than bucket vectors: the
consumers here want means and extremes ("how long is a phase, how uneven
are the chips"), not percentile curves, and four scalars merge cleanly
across processes.

Stdlib-only, like everything under :mod:`repro.obs`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class MetricsRegistry:
    """Named counters, gauges and histograms behind one lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, dict[str, float]] = {}

    # -- recording --------------------------------------------------------

    def inc(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to the counter ``name`` (creating it at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Record the current value of ``name`` (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the duration histogram ``name``."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                self._histograms[name] = {
                    "count": 1,
                    "total": value,
                    "min": value,
                    "max": value,
                }
            else:
                histogram["count"] += 1
                histogram["total"] += value
                histogram["min"] = min(histogram["min"], value)
                histogram["max"] = max(histogram["max"], value)

    # -- harvesting -------------------------------------------------------

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """A JSON-safe copy of every metric."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: dict(histogram)
                    for name, histogram in self._histograms.items()
                },
            }

    def merge(self, snapshot: dict | None) -> None:
        """Fold a :meth:`snapshot` from elsewhere (a pool worker) into this one.

        Counters and histogram counts/totals add; gauges take the incoming
        value; histogram min/max extend.
        """
        if not snapshot:
            return
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in snapshot.get("gauges", {}).items():
                self._gauges[name] = value
            for name, incoming in snapshot.get("histograms", {}).items():
                histogram = self._histograms.get(name)
                if histogram is None:
                    self._histograms[name] = dict(incoming)
                else:
                    histogram["count"] += incoming["count"]
                    histogram["total"] += incoming["total"]
                    histogram["min"] = min(histogram["min"], incoming["min"])
                    histogram["max"] = max(histogram["max"], incoming["max"])

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    @contextmanager
    def scoped(self):
        """Swap in empty storage for a region; yields the region's snapshot.

        On exit the previous metrics are restored untouched and the yielded
        dict is filled with only what the region recorded — this is how pool
        workers measure a single task without inheriting (fork) or clobbering
        the parent's accumulated state.
        """
        with self._lock:
            saved = (self._counters, self._gauges, self._histograms)
            self._counters, self._gauges, self._histograms = {}, {}, {}
        box: dict = {}
        try:
            yield box
        finally:
            box.update(self.snapshot())
            with self._lock:
                self._counters, self._gauges, self._histograms = saved


def hit_rate(hits: float, misses: float) -> float | None:
    """hits / (hits + misses), or None when there were no lookups."""
    lookups = hits + misses
    if lookups <= 0:
        return None
    return hits / lookups


#: The process-wide registry every instrumentation site records into.
metrics = MetricsRegistry()
