"""Tests for the multi-chip scale-out subsystem (``repro.scaleout``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.accelerator import GrowSimulator
from repro.harness import smoke_config
from repro.harness.workloads import get_bundle
from repro.scaleout import (
    ChipTopology,
    InterconnectModel,
    ScaleOutSimulator,
    build_shard_plan,
    chip_workloads,
    make_topology,
)
from repro.scaleout.engine import clear_chip_memo, clear_shard_cache


@pytest.fixture(scope="module")
def config():
    return smoke_config()


@pytest.fixture(scope="module")
def bundle(config):
    # The smoke amazon graph partitions into several clusters, so sharding
    # across chips produces real halo traffic.
    return get_bundle("amazon", config)


# ---------------------------------------------------------------------------
# topology
# ---------------------------------------------------------------------------


def test_ring_hops_take_the_shorter_arc():
    ring = ChipTopology(8, kind="ring")
    assert ring.hops(0, 1) == 1
    assert ring.hops(0, 7) == 1
    assert ring.hops(0, 4) == 4
    assert ring.max_hops == 4
    assert ring.num_links == 16  # 8 chips x 2 directed links


def test_mesh_uses_manhattan_distance_on_a_square_grid():
    mesh = ChipTopology(16, kind="mesh")
    assert mesh.mesh_dims == (4, 4)
    assert mesh.hops(0, 15) == 6  # (0,0) -> (3,3)
    assert mesh.degree(0) == 2  # corner
    assert mesh.degree(5) == 4  # interior


def test_fully_connected_is_always_one_hop():
    fc = ChipTopology(6, kind="fully-connected")
    assert all(fc.hops(0, d) == 1 for d in range(1, 6))
    assert fc.num_links == 30
    assert fc.max_hops == 1


def test_single_chip_topology_degenerates():
    solo = ChipTopology(1)
    assert solo.num_links == 0
    assert solo.max_hops == 0
    assert solo.average_hops == 0.0


def test_topology_validation():
    with pytest.raises(ValueError):
        ChipTopology(0)
    with pytest.raises(ValueError):
        ChipTopology(4, kind="hypercube")
    with pytest.raises(ValueError):
        ChipTopology(4, link_bandwidth_gbps=0.0)
    with pytest.raises(ValueError):
        ChipTopology(4).hops(0, 4)
    assert make_topology(4, "mesh").kind == "mesh"


# ---------------------------------------------------------------------------
# sharding
# ---------------------------------------------------------------------------


def test_shard_plan_covers_every_node_once(bundle):
    plan = build_shard_plan(bundle.dataset.graph, bundle.plan, 4)
    plan.validate()
    assert sum(shard.num_nodes for shard in plan.shards) == bundle.plan.num_nodes
    assert plan.num_chips == 4


def test_shard_halos_are_remote_and_counted(bundle):
    plan = build_shard_plan(bundle.dataset.graph, bundle.plan, 4)
    for shard in plan.shards:
        owned = set(shard.nodes.tolist())
        assert owned.isdisjoint(set(shard.halo_nodes.tolist()))
    # halo_counts[src, dst] sums to the total halo rows per requester.
    for shard in plan.shards:
        assert plan.halo_counts[:, shard.chip_id].sum() == shard.halo_nodes.size


def test_single_chip_shard_has_no_halo(bundle):
    plan = build_shard_plan(bundle.dataset.graph, bundle.plan, 1)
    assert plan.shards[0].num_nodes == bundle.plan.num_nodes
    assert plan.shards[0].halo_nodes.size == 0
    assert plan.halo_rows_total == 0
    assert plan.partial_rows_total == 0


def test_more_chips_than_clusters_leaves_surplus_chips_empty(bundle):
    num_clusters = bundle.plan.num_clusters
    plan = build_shard_plan(bundle.dataset.graph, bundle.plan, num_clusters + 3)
    assert sum(1 for shard in plan.shards if not shard.empty) == num_clusters
    assert sum(shard.num_nodes for shard in plan.shards) == bundle.plan.num_nodes


def test_greedy_shard_method_balances_by_nnz(bundle):
    plan = build_shard_plan(bundle.dataset.graph, bundle.plan, 2, method="greedy")
    plan.validate()
    assert all(not shard.empty for shard in plan.shards)


def test_unknown_shard_method_rejected(bundle):
    with pytest.raises(ValueError, match="unknown shard method"):
        build_shard_plan(bundle.dataset.graph, bundle.plan, 8, method="random")


def test_chip_workloads_slice_rows(bundle):
    plan = build_shard_plan(bundle.dataset.graph, bundle.plan, 4)
    shard = next(s for s in plan.shards if not s.empty)
    sliced = chip_workloads(bundle.workloads, shard)
    assert len(sliced) == len(bundle.workloads)
    layer = sliced[0]
    assert layer.aggregation.sparse.n_rows == shard.num_nodes
    assert layer.aggregation.sparse.n_cols == bundle.plan.num_nodes
    # Slicing all rows reproduces the original matrices.
    full = build_shard_plan(bundle.dataset.graph, bundle.plan, 1).shards[0]
    whole = chip_workloads(bundle.workloads, full)[0]
    np.testing.assert_array_equal(
        whole.aggregation.sparse.indices, bundle.workloads[0].aggregation.sparse.indices
    )


def test_local_plan_is_consistent(bundle):
    plan = build_shard_plan(bundle.dataset.graph, bundle.plan, 4)
    for shard in plan.shards:
        if shard.empty:
            continue
        local = shard.local_plan()
        local.validate()
        assert local.num_nodes == shard.num_nodes
        assert local.num_clusters == len(shard.clusters)


# ---------------------------------------------------------------------------
# interconnect
# ---------------------------------------------------------------------------


def test_zero_traffic_costs_nothing(bundle):
    model = InterconnectModel(ChipTopology(4))
    report = model.cost(np.zeros((4, 4), dtype=np.int64), "halo")
    assert report.transfer_cycles == 0.0
    assert report.exposed_latency_cycles == 0.0
    assert report.total_bytes == 0


def test_fully_connected_never_costs_more_hops_than_ring(bundle):
    shard_plan = build_shard_plan(bundle.dataset.graph, bundle.plan, 4)
    row_bytes = bundle.workloads[0].aggregation.rhs_row_bytes
    ring = InterconnectModel(ChipTopology(4, kind="ring")).layer_exchange(shard_plan, row_bytes)
    fc = InterconnectModel(
        ChipTopology(4, kind="fully-connected")
    ).layer_exchange(shard_plan, row_bytes)
    assert ring.total_bytes == fc.total_bytes  # injected bytes are topology-free
    assert fc.hop_bytes <= ring.hop_bytes


def test_auto_exchange_picks_the_cheaper_pattern(bundle):
    shard_plan = build_shard_plan(bundle.dataset.graph, bundle.plan, 4)
    row_bytes = bundle.workloads[0].aggregation.rhs_row_bytes
    topology = ChipTopology(4)
    halo = InterconnectModel(topology, exchange="halo").layer_exchange(shard_plan, row_bytes)
    reduce_ = InterconnectModel(topology, exchange="reduce").layer_exchange(
        shard_plan, row_bytes
    )
    auto = InterconnectModel(topology, exchange="auto").layer_exchange(shard_plan, row_bytes)
    assert auto.total_cost_cycles == min(halo.total_cost_cycles, reduce_.total_cost_cycles)


def test_unknown_exchange_pattern_rejected():
    with pytest.raises(ValueError, match="unknown exchange pattern"):
        InterconnectModel(ChipTopology(4), exchange="gossip")


def test_faster_links_lower_transfer_cycles(bundle):
    shard_plan = build_shard_plan(bundle.dataset.graph, bundle.plan, 4)
    row_bytes = bundle.workloads[0].aggregation.rhs_row_bytes
    slow = InterconnectModel(
        ChipTopology(4, link_bandwidth_gbps=8.0)
    ).layer_exchange(shard_plan, row_bytes)
    fast = InterconnectModel(
        ChipTopology(4, link_bandwidth_gbps=64.0)
    ).layer_exchange(shard_plan, row_bytes)
    assert fast.transfer_cycles < slow.transfer_cycles


# ---------------------------------------------------------------------------
# engine
# ---------------------------------------------------------------------------


def test_one_chip_system_reproduces_single_chip_grow_exactly(config, bundle):
    simulator = ScaleOutSimulator(config=config, topology=ChipTopology(1), use_cache=False)
    system = simulator.run("amazon")
    reference = GrowSimulator(config.grow_config()).run_model(
        bundle.workloads, bundle.plan
    )
    assert system.system_cycles == reference.total_cycles
    assert system.dram_bytes == reference.total_dram_bytes
    assert system.interchip_bytes == 0
    assert system.speedup_vs_single_chip == 1.0
    assert system.scaling_efficiency == 1.0


def test_multi_chip_system_reports_traffic_and_efficiency(config):
    system = ScaleOutSimulator(
        config=config, topology=ChipTopology(4, kind="mesh"), use_cache=False
    ).run("amazon")
    assert system.interchip_bytes > 0
    assert system.comm_transfer_cycles > 0
    assert 0.0 < system.scaling_efficiency <= 4.0
    assert system.system_cycles < system.single_chip_cycles
    assert len(system.chip_cycles) == 4
    assert system.area_mm2 > 0
    assert system.energy_nj > system.interconnect_energy_nj > 0


def test_serial_parallel_and_cached_runs_are_identical(config, tmp_path):
    clear_shard_cache()
    clear_chip_memo()  # the serial run must really execute, not hit the memo
    topology = ChipTopology(4, kind="ring")
    serial = ScaleOutSimulator(
        config=config, topology=topology, jobs=1, results_dir=tmp_path
    ).run("amazon")
    parallel = ScaleOutSimulator(
        config=config, topology=topology, jobs=4, results_dir=tmp_path, force=True
    ).run("amazon")
    # Clearing the in-memory memo forces the third run through the on-disk
    # cache entries the first two runs wrote.
    clear_chip_memo()
    cached = ScaleOutSimulator(
        config=config, topology=topology, jobs=1, results_dir=tmp_path
    ).run("amazon")
    assert cached.chip_statuses == ["cached"] * 4
    assert serial.comparable_dict() == parallel.comparable_dict()
    assert serial.comparable_dict() == cached.comparable_dict()


def test_chip_cache_is_shared_across_link_parameter_sweeps(config, tmp_path):
    clear_chip_memo()  # force the first run to write real disk entries
    ScaleOutSimulator(
        config=config, topology=ChipTopology(4, link_bandwidth_gbps=16.0), results_dir=tmp_path
    ).run("amazon")
    clear_chip_memo()
    swept = ScaleOutSimulator(
        config=config, topology=ChipTopology(4, link_bandwidth_gbps=64.0), results_dir=tmp_path
    ).run("amazon")
    # Same shard, same chips: the faster fabric reuses every per-chip entry.
    assert swept.chip_statuses == ["cached"] * 4


def test_chip_memo_avoids_resimulation_without_a_disk_cache(config):
    clear_chip_memo()
    first = ScaleOutSimulator(
        config=config, topology=ChipTopology(4), use_cache=False
    ).run("amazon")
    assert "ran" in first.chip_statuses
    # A second uncached simulator in the same process serves every chip from
    # the in-memory memo (this is what keeps the suite's sweep experiments
    # from re-simulating the shared 1-chip baseline per sweep point).
    second = ScaleOutSimulator(
        config=config, topology=ChipTopology(4, kind="mesh"), use_cache=False
    ).run("amazon")
    assert second.chip_statuses == ["cached"] * 4
    assert second.chip_cycles == first.chip_cycles


def test_unknown_dataset_rejected(config):
    simulator = ScaleOutSimulator(config=config, topology=ChipTopology(2), use_cache=False)
    with pytest.raises(KeyError, match="not part of this configuration"):
        simulator.run("reddit")


def test_report_has_one_row_per_dataset(config):
    simulator = ScaleOutSimulator(config=config, topology=ChipTopology(2), use_cache=False)
    results = simulator.run_all()
    report = simulator.report(results)
    assert report.name == "scaleout_ring2"
    assert [row["dataset"] for row in report.rows] == list(config.datasets)
    assert "efficiency" in report.columns and "interchip_mb" in report.columns
