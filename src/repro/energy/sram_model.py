"""CACTI-like SRAM energy model.

The paper uses CACTI at 45 nm for SRAM dynamic and leakage power.  We use a
small analytical stand-in: dynamic energy per access grows roughly with the
square root of the capacity (bit-line/word-line length), leakage power grows
linearly with capacity.  Absolute constants are anchored to commonly quoted
CACTI 45 nm numbers (a 64-byte read of an 8 KB SRAM costs about 20 pJ;
leakage is about 1 mW per 32 KB), which keeps on-chip accesses roughly an
order of magnitude cheaper per byte than DRAM — the relationship the paper's
Figure 22 energy breakdown relies on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

KB = 1024

# Anchor points for the analytical model (45 nm, from CACTI-style data).
_REFERENCE_CAPACITY_BYTES = 8 * KB
_REFERENCE_ACCESS_BYTES = 64
_REFERENCE_ACCESS_ENERGY_PJ = 20.0
_REFERENCE_LEAKAGE_MW_PER_KB = 1.0 / 32.0


def sram_access_energy_pj(capacity_bytes: int, access_bytes: int = 64) -> float:
    """Dynamic energy of one access to an SRAM of the given capacity.

    Energy scales with sqrt(capacity) (array geometry) and linearly with the
    number of bytes moved per access.
    """
    if capacity_bytes <= 0:
        return 0.0
    geometry_scale = math.sqrt(capacity_bytes / _REFERENCE_CAPACITY_BYTES)
    width_scale = access_bytes / _REFERENCE_ACCESS_BYTES
    return _REFERENCE_ACCESS_ENERGY_PJ * geometry_scale * width_scale


def sram_leakage_mw(capacity_bytes: int) -> float:
    """Leakage power of an SRAM of the given capacity, in milliwatts."""
    if capacity_bytes <= 0:
        return 0.0
    return _REFERENCE_LEAKAGE_MW_PER_KB * (capacity_bytes / KB)


@dataclass(frozen=True)
class SRAMEnergyModel:
    """Energy model bound to one SRAM buffer size.

    Attributes:
        capacity_bytes: SRAM capacity.
        access_bytes: bytes moved per access event.
    """

    capacity_bytes: int
    access_bytes: int = 64

    @property
    def access_energy_pj(self) -> float:
        """Dynamic energy per access in picojoules."""
        return sram_access_energy_pj(self.capacity_bytes, self.access_bytes)

    @property
    def leakage_mw(self) -> float:
        """Leakage power in milliwatts."""
        return sram_leakage_mw(self.capacity_bytes)

    def dynamic_energy_nj(self, num_accesses: int) -> float:
        """Dynamic energy of ``num_accesses`` accesses, in nanojoules."""
        return self.access_energy_pj * num_accesses / 1e3

    def leakage_energy_nj(self, runtime_cycles: float, frequency_ghz: float = 1.0) -> float:
        """Leakage energy over a runtime, in nanojoules."""
        seconds = runtime_cycles / (frequency_ghz * 1e9)
        return self.leakage_mw * 1e-3 * seconds * 1e9
