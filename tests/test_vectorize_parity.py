"""Bit-exactness harness for the vectorized hot paths.

``tests/golden/vectorize_parity.json`` freezes the outputs of the
pre-vectorization implementation: simulated metrics for every Table I
dataset on three backend configurations, one scenario per generator
family, and raw edge-set hashes of direct generator calls.  Every entry
must stay *byte-identical* — the vectorized pipeline is only allowed to
be faster, never different.  Compare with ``==`` / digest equality, not
``pytest.approx``: approximate parity is a regression here.

If one of these tests fails, the refactor changed observable behaviour;
fix the code, do not regenerate the fixture.
"""

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.api import Session, SimRequest
from repro.graph import registry
from repro.graph.datasets import load_dataset
from repro.graph.generators import (
    chung_lu_graph,
    erdos_renyi_graph,
    powerlaw_cluster_graph,
    rmat_graph,
)

GOLDEN_PATH = Path(__file__).parent / "golden" / "vectorize_parity.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

DATASET_NAMES = sorted(GOLDEN["datasets"])
SCENARIO_NAMES = sorted(GOLDEN["scenarios"])

# The exact generator invocations the fixture was captured from: one per
# family, seeds and sizes pinned.
GENERATOR_CALLS = {
    "chung-lu": lambda: chung_lu_graph(
        3000, 10.0, num_communities=6, rng=np.random.default_rng(123)
    ),
    "erdos-renyi": lambda: erdos_renyi_graph(3000, 8.0, rng=np.random.default_rng(123)),
    "powerlaw-cluster": lambda: powerlaw_cluster_graph(
        1500, 6.0, rng=np.random.default_rng(123)
    ),
    "rmat": lambda: rmat_graph(
        4096, 16.0, num_communities=8, rng=np.random.default_rng(123)
    ),
}


def edge_hash(graph) -> str:
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(graph.src, dtype=np.int64).tobytes())
    digest.update(np.ascontiguousarray(graph.dst, dtype=np.int64).tobytes())
    return digest.hexdigest()


def community_hash(graph) -> str | None:
    if graph.communities is None:
        return None
    return hashlib.sha256(
        np.ascontiguousarray(graph.communities, dtype=np.int64).tobytes()
    ).hexdigest()


def assert_metrics_identical(actual: dict, golden: dict, context: str) -> None:
    for key, value in golden.items():
        assert actual[key] == value, (
            f"{context}: metric {key!r} drifted from the golden value "
            f"({actual[key]!r} != {value!r})"
        )


@pytest.fixture(scope="module")
def session():
    return Session(use_cache=False)


# ---------------------------------------------------------------------------
# Table I datasets: metrics on every backend configuration the goldens cover.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_dataset_edge_set_byte_identical(name):
    graph = load_dataset(name).graph
    golden = GOLDEN["datasets"][name]
    assert graph.num_nodes == golden["num_nodes"]
    assert int(graph.src.size) == golden["num_edges_stored"]
    assert edge_hash(graph) == golden["edges_sha256"]


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_dataset_grow_metrics_bit_exact(session, name):
    result = session.run(SimRequest(dataset=name, backend="grow"))
    assert_metrics_identical(
        result.metrics, GOLDEN["datasets"][name]["grow"], f"{name}/grow"
    )


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_dataset_grow_unpartitioned_metrics_bit_exact(session, name):
    result = session.run(SimRequest(dataset=name, backend="grow", partitioned=False))
    assert_metrics_identical(
        result.metrics,
        GOLDEN["datasets"][name]["grow_unpartitioned"],
        f"{name}/grow w/o partitioning",
    )


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_dataset_gcnax_metrics_bit_exact(session, name):
    result = session.run(SimRequest(dataset=name, backend="gcnax"))
    assert_metrics_identical(
        result.metrics, GOLDEN["datasets"][name]["gcnax"], f"{name}/gcnax"
    )


# ---------------------------------------------------------------------------
# One registered scenario per generator family, end to end through grow.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_scenario_pipeline_bit_exact(session, name):
    golden = GOLDEN["scenarios"][name]
    spec = registry.scenario_from_dict(golden["definition"])
    registry.register_dataset(spec, replace=True)
    graph = load_dataset(name).graph
    assert graph.num_nodes == golden["num_nodes"]
    assert int(graph.src.size) == golden["num_edges_stored"]
    assert edge_hash(graph) == golden["edges_sha256"]
    assert community_hash(graph) == golden["communities_sha256"]
    result = session.run(SimRequest(dataset=name, backend="grow"))
    assert_metrics_identical(result.metrics, golden["grow"], f"{name}/grow")


# ---------------------------------------------------------------------------
# Direct generator calls: the raw edge stream, byte for byte.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("family", sorted(GENERATOR_CALLS))
def test_generator_output_byte_identical(family):
    graph = GENERATOR_CALLS[family]()
    golden = GOLDEN["generators"][family]
    assert graph.num_nodes == golden["num_nodes"]
    assert int(graph.src.size) == golden["num_edges_stored"]
    assert edge_hash(graph) == golden["edges_sha256"]
    assert community_hash(graph) == golden["communities_sha256"]
    assert float(graph.src.size / graph.num_nodes) == golden["mean_stored_degree"]


# ---------------------------------------------------------------------------
# Serial == parallel == cached: the three execution paths must agree on the
# golden values, not merely with each other.
# ---------------------------------------------------------------------------


def test_serial_parallel_cached_identical(tmp_path):
    names = ["cora", "citeseer"]
    requests = [SimRequest(dataset=name, backend="grow") for name in names]
    goldens = [GOLDEN["datasets"][name]["grow"] for name in names]

    serial = [Session(use_cache=False, force=True).run(req) for req in requests]
    parallel = Session(use_cache=False, jobs=2).run_batch(requests)
    cached_session = Session(results_dir=tmp_path, use_cache=True)
    first = [cached_session.run(req) for req in requests]
    cached = [cached_session.run(req) for req in requests]

    for name, golden, s, p, f, c in zip(names, goldens, serial, parallel, first, cached):
        assert_metrics_identical(s.metrics, golden, f"{name}/serial")
        assert p.metrics == s.metrics, f"{name}: parallel drifted from serial"
        assert f.metrics == s.metrics, f"{name}: fresh cached run drifted"
        assert c.metrics == s.metrics, f"{name}: cache-hit run drifted"
