"""The bench driver shared by ``repro bench`` and ``benchmarks/perf.py``.

Runs the requested rungs (each in its own worker process by default),
emits the next ``BENCH_<n>.json``, and checks the result for regressions
— exiting non-zero on one, so CI can gate on it.  Two gates exist:

* the legacy pairwise check (``--max-regression``) against only the
  previous document, and
* the trajectory gate (``--gate``), which classifies every rung against
  a min-over-window baseline with a tolerance band via
  :mod:`repro.obs.trend` — robust to single-document noise.

Each measured rung also appends one ``bench`` record to the run ledger
(:mod:`repro.obs.ledger`) unless it is disabled.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

from repro.bench import emit
from repro.bench.ladder import DEFAULT_LADDER, FULL_LADDER, RUNGS, run_rung


def _worker_environment() -> dict[str, str]:
    """Child env with the package's source root on PYTHONPATH."""
    import repro

    src_root = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if src_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = src_root + (os.pathsep + existing if existing else "")
    return env


def _run_worker_once(name: str) -> dict:
    """Measure one rung once in a fresh interpreter (see ``repro.bench.worker``)."""
    command = [sys.executable, "-m", "repro.bench.worker", name, "1"]
    proc = subprocess.run(
        command, capture_output=True, text=True, env=_worker_environment()
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"bench worker for rung {name!r} failed "
            f"(exit {proc.returncode}):\n{proc.stderr.strip()}"
        )
    # The sample is the last stdout line; the rung's own output went to stderr.
    for line in reversed(proc.stdout.strip().splitlines()):
        line = line.strip()
        if line.startswith("{"):
            return json.loads(line)
    raise RuntimeError(f"bench worker for rung {name!r} printed no sample")


def _run_rung_isolated(name: str, repeats: int) -> dict:
    """Run every repeat in its own interpreter and merge the samples.

    A repeat inside one process would rerun only the cycle model — the
    dataset and preprocessing bundles are memoised per process — so each
    repeat gets a cold interpreter and the merged record keeps the
    minimum wall, the maximum RSS and the (identical) metrics.  The phase
    breakdown follows the wall estimator: the fastest repeat's wins.
    """
    merged = _run_worker_once(name)
    best_wall = min(merged["wall_samples"])
    for _ in range(repeats - 1):
        sample = _run_worker_once(name)
        if sample["metrics"] != merged["metrics"]:
            raise RuntimeError(
                f"rung {name!r} is not deterministic: repeat metrics differ"
            )
        merged["wall_samples"].extend(sample["wall_samples"])
        merged["peak_rss_kb"] = max(merged["peak_rss_kb"], sample["peak_rss_kb"])
        if min(sample["wall_samples"]) < best_wall and "phases" in sample:
            best_wall = min(sample["wall_samples"])
            merged["phases"] = sample["phases"]
    merged["wall_seconds"] = min(merged["wall_samples"])
    return merged


def _record_bench_ledger(sample: dict) -> None:
    """One ``bench`` ledger line per measured rung (no-op when disabled)."""
    from repro.obs import ledger as run_ledger

    if not run_ledger.ledger_enabled():
        return
    run_ledger.record_run(
        "bench",
        sample["rung"],
        outcome="ok",
        wall_seconds=sample["wall_seconds"],
        scenario_digest=sample["scenario_digest"],
        phases=sample.get("phases") or None,
        metrics=sample["metrics"],
    )


def run_bench(
    rungs: list[str] | None = None,
    full: bool = False,
    repeats: int = 1,
    bench_dir: Path | str = emit.DEFAULT_BENCH_DIR,
    isolated: bool = True,
    max_ratio: float = 2.0,
    notes: str = "",
    emit_json: bool = True,
    gate: bool = False,
    gate_tolerance: float | None = None,
    gate_window: int | None = None,
    out=sys.stdout,
) -> int:
    """Run the ladder, emit the next document, report regressions.

    Returns the process exit code: 0 on success, 1 on a regression.
    With ``gate=False`` (legacy) a rung regresses when its wall-clock
    exceeds ``max_ratio`` times the previous document's; with
    ``gate=True`` the trend engine classifies each rung against the whole
    committed trajectory (min-over-window baseline, ``gate_tolerance``
    band) and any ``regressed`` verdict fails.
    """
    from repro.obs import trend

    names = list(rungs) if rungs else list(FULL_LADDER if full else DEFAULT_LADDER)
    unknown = [name for name in names if name not in RUNGS]
    if unknown:
        raise ValueError(f"unknown bench rung(s) {unknown}; choose from {sorted(RUNGS)}")

    bench_dir = Path(bench_dir)
    previous = None
    previous_path = emit.latest_bench_path(bench_dir)
    if previous_path is not None:
        previous = emit.load_bench(previous_path)
    # Gate history must be captured before the new document is written,
    # so the candidate never competes against itself.
    history = trend.load_trajectory(bench_dir) if gate else []

    samples = []
    for name in names:
        print(f"  running {name} ...", file=out, flush=True)
        if isolated:
            sample = _run_rung_isolated(name, repeats)
        else:
            sample = run_rung(name, repeats=repeats)
        print(
            f"    {sample['wall_seconds']:.3f}s wall, "
            f"{sample['peak_rss_kb'] / 1024:.0f} MB peak RSS",
            file=out,
        )
        samples.append(sample)
        _record_bench_ledger(sample)

    document = emit.build_document(samples, notes=notes)
    exit_code = 0
    if emit_json:
        path = emit.write_bench(document, bench_dir)
        print(f"wrote {path}", file=out)

    if gate:
        report = trend.evaluate_gate(
            document,
            history,
            tolerance=gate_tolerance if gate_tolerance is not None else trend.DEFAULT_TOLERANCE,
            window=gate_window if gate_window is not None else trend.DEFAULT_WINDOW,
        )
        for rung_trend in report.rungs:
            print(f"  {rung_trend.describe()}", file=out)
        if not report.ok:
            names_failed = ", ".join(t.rung for t in report.regressions)
            print(
                f"trend gate FAILED (tolerance ±{report.tolerance * 100:.0f}%, "
                f"window {report.window}): {names_failed}",
                file=out,
            )
            exit_code = 1
        else:
            print(
                f"trend gate passed (tolerance ±{report.tolerance * 100:.0f}%, "
                f"window {report.window}, {report.documents} document(s) of history)",
                file=out,
            )
    elif previous is not None:
        comparisons = emit.compare_documents(previous, document, max_ratio=max_ratio)
        for row in comparisons:
            if not row["comparable"]:
                print(
                    f"  {row['rung']}: scenario changed, not comparable", file=out
                )
                continue
            verdict = "REGRESSED" if row["regressed"] else "ok"
            print(
                f"  {row['rung']}: {row['previous_wall_seconds']:.3f}s -> "
                f"{row['wall_seconds']:.3f}s  (x{row['ratio']:.2f}, {verdict})",
                file=out,
            )
            if row["regressed"]:
                exit_code = 1
        if exit_code:
            print(
                f"wall-clock regression beyond x{max_ratio:g} vs "
                f"{previous_path.name}",
                file=out,
            )
    return exit_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Run the fixed benchmark ladder and append BENCH_<n>.json.",
    )
    parser.add_argument(
        "--rungs",
        nargs="+",
        default=None,
        metavar="RUNG",
        help=f"rungs to run (default ladder: {', '.join(DEFAULT_LADDER)}; "
        f"known: {', '.join(sorted(RUNGS))})",
    )
    parser.add_argument(
        "--full", action="store_true", help="include the 1M-node rung (minutes)"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="repeats per rung; wall_seconds records the minimum (default 1)",
    )
    parser.add_argument(
        "--bench-dir",
        type=Path,
        default=emit.DEFAULT_BENCH_DIR,
        help=f"directory of the BENCH_<n>.json trajectory (default {emit.DEFAULT_BENCH_DIR})",
    )
    parser.add_argument(
        "--in-process",
        action="store_true",
        help="run rungs in this interpreter instead of per-rung workers "
        "(faster, but RSS figures become cumulative)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        metavar="RATIO",
        help="fail when a rung's wall-clock exceeds RATIO times the previous "
        "document's (default 2.0)",
    )
    parser.add_argument(
        "--notes", default="", help="free-form note stored in the document"
    )
    parser.add_argument(
        "--no-emit",
        action="store_true",
        help="measure and compare without writing a new BENCH_<n>.json",
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help="gate with the trend engine (min-over-window baseline + "
        "tolerance band) against the whole trajectory instead of the "
        "pairwise --max-regression check",
    )
    parser.add_argument(
        "--gate-tolerance",
        type=float,
        default=None,
        metavar="FRACTION",
        help="symmetric tolerance band for --gate, e.g. 0.25 = ±25%% "
        "(default from repro.obs.trend)",
    )
    parser.add_argument(
        "--gate-window",
        type=int,
        default=None,
        metavar="N",
        help="how many recent comparable documents the --gate baseline "
        "spans (default from repro.obs.trend)",
    )
    parser.add_argument(
        "--no-ledger",
        action="store_true",
        help="do not append bench records to the run ledger",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="FILE",
        help="write a Chrome/Perfetto trace of the driver process to FILE "
        "(in-process rungs only; isolated workers trace internally)",
    )
    parser.add_argument(
        "--log-level",
        default=None,
        metavar="LEVEL",
        help="emit structured JSON logs at LEVEL (debug, info, warning, ...)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.repeats < 1:
        raise SystemExit("--repeats must be at least 1")
    from repro.obs import cli_telemetry

    finish = cli_telemetry(args.trace, args.log_level, no_ledger=args.no_ledger)
    try:
        return run_bench(
            rungs=args.rungs,
            full=args.full,
            repeats=args.repeats,
            bench_dir=args.bench_dir,
            isolated=not args.in_process,
            max_ratio=args.max_regression,
            notes=args.notes,
            emit_json=not args.no_emit,
            gate=args.gate,
            gate_tolerance=args.gate_tolerance,
            gate_window=args.gate_window,
        )
    except (ValueError, RuntimeError, emit.BenchSchemaError) as error:
        raise SystemExit(str(error)) from error
    finally:
        trace_path = finish()
        if trace_path is not None:
            print(f"trace written to {trace_path}", file=sys.stderr)
