"""The typed simulation request: one description of *what to simulate*.

A :class:`SimRequest` names a dataset, a backend (the GROW simulator, one of
the baseline accelerators, the multi-PE scaling model or the multi-chip
scale-out engine) and every knob that influences the simulation's outcome:
the experiment-level architecture parameters (bandwidth, MAC count, seed,
cluster target), simulator-config overrides, and — for scale-out systems —
the inter-chip fabric.  Because the request is validated and canonicalised
at construction, its JSON form is a *universal cache key*: two requests that
describe the same simulation always serialize to the same
:meth:`canonical_json` and therefore the same :meth:`cache_key`, no matter
how their overrides were ordered or whether numbers arrived as ``16`` or
``16.0``.

The request layer deliberately imports nothing from the harness at module
scope; the binding onto :class:`~repro.harness.config.ExperimentConfig`
happens at call time, which keeps ``repro.api`` importable from every layer
(including the harness itself) without cycles.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

from repro.api.errors import RequestError, unknown_name_message
from repro.graph import registry
from repro.graph.registry import DatasetSpec

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.harness.config import ExperimentConfig

#: Topology kinds of the scale-out fabric (mirrors ``repro.scaleout.topology``,
#: restated here so request validation never has to import the engine stack).
TOPOLOGY_KINDS = ("ring", "mesh", "fully-connected")

#: Inter-chip exchange patterns understood by the scale-out engine.
EXCHANGE_PATTERNS = ("halo", "reduce", "auto")

#: Cluster-to-chip assignment methods of the shard planner.
SHARD_METHODS = ("metis", "greedy")

#: Scalar types allowed as simulator-config override values (JSON-safe).
_SCALAR_TYPES = (bool, int, float, str)


def _coerce_int(value: Any, name: str, minimum: int | None = None) -> int:
    try:
        coerced = int(value)
    except (TypeError, ValueError):
        raise RequestError(f"{name} must be an integer, got {value!r}") from None
    if minimum is not None and coerced < minimum:
        raise RequestError(f"{name} must be at least {minimum}, got {coerced}")
    return coerced


def _coerce_float(value: Any, name: str, positive: bool = False) -> float:
    try:
        coerced = float(value)
    except (TypeError, ValueError):
        raise RequestError(f"{name} must be a number, got {value!r}") from None
    if positive and coerced <= 0:
        raise RequestError(f"{name} must be positive, got {coerced}")
    return coerced


def _choice(value: str, name: str, choices: tuple[str, ...]) -> str:
    if value not in choices:
        raise RequestError(unknown_name_message(name, str(value), choices))
    return value


@dataclass(frozen=True)
class ScaleOutSpec:
    """The inter-chip fabric of a ``scaleout`` request.

    Attributes:
        num_chips: number of chips in the system.
        topology: fabric kind (``ring``, ``mesh`` or ``fully-connected``).
        link_bandwidth_gbps: bandwidth of one inter-chip link.
        link_latency_cycles: per-hop latency in accelerator cycles.
        exchange: inter-chip exchange pattern (``halo``/``reduce``/``auto``).
        shard_method: cluster-to-chip assignment (``metis`` or ``greedy``).
    """

    num_chips: int = 1
    topology: str = "ring"
    link_bandwidth_gbps: float = 32.0
    link_latency_cycles: int = 50
    exchange: str = "halo"
    shard_method: str = "metis"

    def __post_init__(self) -> None:
        object.__setattr__(self, "num_chips", _coerce_int(self.num_chips, "num_chips", 1))
        object.__setattr__(
            self,
            "link_bandwidth_gbps",
            _coerce_float(self.link_bandwidth_gbps, "link_bandwidth_gbps", positive=True),
        )
        object.__setattr__(
            self,
            "link_latency_cycles",
            _coerce_int(self.link_latency_cycles, "link_latency_cycles", 0),
        )
        _choice(self.topology, "topology", TOPOLOGY_KINDS)
        _choice(self.exchange, "exchange pattern", EXCHANGE_PATTERNS)
        _choice(self.shard_method, "shard method", SHARD_METHODS)

    def to_dict(self) -> dict[str, Any]:
        return {
            "num_chips": self.num_chips,
            "topology": self.topology,
            "link_bandwidth_gbps": self.link_bandwidth_gbps,
            "link_latency_cycles": self.link_latency_cycles,
            "exchange": self.exchange,
            "shard_method": self.shard_method,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScaleOutSpec":
        return cls(**{k: data[k] for k in cls.__dataclass_fields__ if k in data})


@dataclass(frozen=True)
class ChipSpec:
    """One shard slice of a dataset: chip ``chip_id`` of an ``num_chips``-way
    partition.  Used by the scale-out engine to route its per-chip GROW runs
    through the same facade (and the same caches) as whole-dataset runs.

    Deliberately independent of the fabric's link parameters: a chip's
    simulation depends only on the shard, so bandwidth/latency/topology
    sweeps over the same system share every per-chip cache entry.
    """

    num_chips: int
    chip_id: int
    shard_method: str = "metis"

    def __post_init__(self) -> None:
        object.__setattr__(self, "num_chips", _coerce_int(self.num_chips, "num_chips", 1))
        object.__setattr__(self, "chip_id", _coerce_int(self.chip_id, "chip_id", 0))
        if self.chip_id >= self.num_chips:
            raise RequestError(
                f"chip_id {self.chip_id} out of range for a {self.num_chips}-chip system"
            )
        _choice(self.shard_method, "shard method", SHARD_METHODS)

    def to_dict(self) -> dict[str, Any]:
        return {
            "num_chips": self.num_chips,
            "chip_id": self.chip_id,
            "shard_method": self.shard_method,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChipSpec":
        return cls(**{k: data[k] for k in cls.__dataclass_fields__ if k in data})


@dataclass(frozen=True)
class SimRequest:
    """One simulation, fully described.

    Attributes:
        dataset: registered dataset name, case-insensitive (the paper's
            built-ins, see ``repro.graph.registry.dataset_names``, or a
            runtime-registered scenario).
        backend: registered backend name (see ``repro.api.list_backends``).
        bandwidth_gbps: off-chip DRAM bandwidth of the design.
        num_macs: MAC count of the design.
        seed: RNG seed for dataset/model generation and preprocessing.
        target_cluster_nodes: partitioning pass's nodes-per-cluster target.
        gcnax_tile: GCNAX tile dimension (square tiles; gcnax backend only).
        num_nodes: optional synthetic node-count override for the dataset.
        partitioned: use the partitioned preprocessing plan (GROW backends).
        overrides: simulator-config field overrides (e.g.
            ``runahead_degree=32``); accepted as a mapping, stored
            canonically as a sorted tuple of pairs.
        fabric: the inter-chip fabric; required meaningfully only by (and
            only allowed with) the ``scaleout`` backend.
        chip: restrict the run to one shard slice (``grow`` backend only).
        scenario: the full synthetic-workload definition when ``dataset`` is
            not one of the paper's built-ins — a
            :class:`~repro.graph.registry.DatasetSpec` or a declarative
            scenario mapping (see ``repro.graph.registry.scenario_from_dict``).
            Auto-attached from the runtime registry when the dataset name is
            registered there, so the request (and hence its cache key and
            any worker process it is shipped to) is self-contained: two
            same-named scenarios with different parameters never share a key.
    """

    dataset: str
    backend: str = "grow"
    bandwidth_gbps: float = 16.0
    num_macs: int = 16
    seed: int = 0
    target_cluster_nodes: int = 600
    gcnax_tile: int = 32
    num_nodes: int | None = None
    partitioned: bool = True
    overrides: tuple[tuple[str, Any], ...] = ()
    fabric: ScaleOutSpec | None = None
    chip: ChipSpec | None = None
    scenario: DatasetSpec | None = None

    def __post_init__(self) -> None:
        # -- canonicalise the dataset name (the loader is case-insensitive;
        # the facade must accept exactly the same spellings).
        object.__setattr__(self, "dataset", str(self.dataset).strip().lower())
        # -- canonicalise scalars so equivalent requests hash identically.
        object.__setattr__(
            self, "bandwidth_gbps", _coerce_float(self.bandwidth_gbps, "bandwidth_gbps", True)
        )
        object.__setattr__(self, "num_macs", _coerce_int(self.num_macs, "num_macs", 1))
        object.__setattr__(self, "seed", _coerce_int(self.seed, "seed"))
        object.__setattr__(
            self,
            "target_cluster_nodes",
            _coerce_int(self.target_cluster_nodes, "target_cluster_nodes", 1),
        )
        object.__setattr__(self, "gcnax_tile", _coerce_int(self.gcnax_tile, "gcnax_tile", 1))
        if self.num_nodes is not None:
            object.__setattr__(self, "num_nodes", _coerce_int(self.num_nodes, "num_nodes", 1))
        object.__setattr__(self, "partitioned", bool(self.partitioned))

        # -- canonicalise overrides: mapping or pair-iterable -> sorted tuple
        # (deduped through a dict first — last occurrence wins, matching the
        # JSON-object form — so equal cache keys imply equal requests).
        items = self.overrides.items() if isinstance(self.overrides, Mapping) else self.overrides
        try:
            pairs = sorted({str(key): value for key, value in items}.items())
        except (TypeError, ValueError):
            raise RequestError(
                f"overrides must be a mapping or iterable of (key, value) pairs, "
                f"got {self.overrides!r}"
            ) from None
        for key, value in pairs:
            if not isinstance(value, _SCALAR_TYPES):
                raise RequestError(
                    f"override {key!r} must be a JSON-safe scalar "
                    f"(bool/int/float/str), got {type(value).__name__}"
                )
        object.__setattr__(self, "overrides", tuple(pairs))

        if isinstance(self.fabric, Mapping):
            object.__setattr__(self, "fabric", ScaleOutSpec.from_dict(self.fabric))
        if isinstance(self.chip, Mapping):
            object.__setattr__(self, "chip", ChipSpec.from_dict(self.chip))

        self._canonicalise_scenario()
        self._validate_names()
        self._validate_combination()
        self._canonicalise_irrelevant_fields()

    # -- validation --------------------------------------------------------

    def _canonicalise_scenario(self) -> None:
        """Normalise/auto-attach the scenario so the request is self-contained."""
        scenario = self.scenario
        if scenario is None:
            if registry.known_dataset(self.dataset) and not registry.is_builtin(self.dataset):
                # A runtime-registered scenario: embed its full definition so
                # the cache key, and any worker process the request is
                # shipped to, does not depend on this process's registry.
                scenario = registry.get_spec(self.dataset)
            else:
                return
        if isinstance(scenario, Mapping):
            scenario = dict(scenario)
            scenario.setdefault("name", self.dataset)
        try:
            scenario = registry.canonical_scenario(scenario)
        except ValueError as error:
            raise RequestError(str(error)) from None
        if registry.is_builtin(scenario.name):
            raise RequestError(
                f"scenario {scenario.name!r} cannot redefine a built-in dataset"
            )
        if self.dataset != scenario.name:
            raise RequestError(
                f"request dataset {self.dataset!r} does not match its scenario's "
                f"name {scenario.name!r}"
            )
        object.__setattr__(self, "scenario", scenario)

    def _validate_names(self) -> None:
        if self.scenario is None and not registry.known_dataset(self.dataset):
            raise RequestError(
                unknown_name_message("dataset", self.dataset, registry.dataset_names())
            )
        # Imported at call time: the backend registry lives one module over
        # and is populated when ``repro.api`` finishes importing.
        from repro.api.backends import known_backend, list_backends

        if not known_backend(self.backend):
            raise RequestError(
                unknown_name_message("backend", self.backend, list_backends())
            )

    def _validate_combination(self) -> None:
        if self.fabric is not None and self.backend != "scaleout":
            raise RequestError(
                f"a fabric spec only applies to the 'scaleout' backend, "
                f"not {self.backend!r}"
            )
        if self.chip is not None and self.backend != "grow":
            raise RequestError(
                f"a chip spec only applies to the 'grow' backend, not {self.backend!r}"
            )

    def _canonicalise_irrelevant_fields(self) -> None:
        """Reset fields the chosen backend provably ignores to their defaults.

        Two requests that describe the same simulation must hash to the same
        :meth:`cache_key`, so knobs with no effect on the outcome cannot be
        allowed into the canonical form: a ``scaleout`` request with no
        fabric means the default fabric; ``partitioned`` only reaches the
        plan selection of whole-dataset GROW-family runs (baselines never
        load a plan, scale-out and chip slices always shard the partitioned
        one); ``gcnax_tile`` only reaches the ``gcnax`` backend; a
        ``num_nodes`` override equal to the embedded scenario's own size
        describes the same workload as no override.
        """
        if self.backend == "scaleout" and self.fabric is None:
            object.__setattr__(self, "fabric", ScaleOutSpec())
        if (
            self.scenario is not None
            and self.num_nodes == self.scenario.synthetic_nodes
        ):
            # An override equal to the scenario's own size is the default.
            object.__setattr__(self, "num_nodes", None)
        if self.backend not in ("grow", "multipe") or self.chip is not None:
            object.__setattr__(self, "partitioned", True)
        if self.backend != "gcnax":
            default_tile = type(self).__dataclass_fields__["gcnax_tile"].default
            object.__setattr__(self, "gcnax_tile", default_tile)

    # -- canonical forms ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form; :meth:`from_dict` round-trips it exactly."""
        return {
            "dataset": self.dataset,
            "backend": self.backend,
            "bandwidth_gbps": self.bandwidth_gbps,
            "num_macs": self.num_macs,
            "seed": self.seed,
            "target_cluster_nodes": self.target_cluster_nodes,
            "gcnax_tile": self.gcnax_tile,
            "num_nodes": self.num_nodes,
            "partitioned": self.partitioned,
            "overrides": dict(self.overrides),
            "fabric": self.fabric.to_dict() if self.fabric is not None else None,
            "chip": self.chip.to_dict() if self.chip is not None else None,
            "scenario": (
                registry.scenario_to_dict(self.scenario)
                if self.scenario is not None
                else None
            ),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimRequest":
        """Rebuild a request from its :meth:`to_dict` (or hand-written) form."""
        known = {k: data[k] for k in cls.__dataclass_fields__ if k in data}
        unknown = sorted(set(data) - set(known))
        if unknown:
            raise RequestError(
                f"unknown request field(s) {unknown}; "
                f"valid fields are {sorted(cls.__dataclass_fields__)}"
            )
        if known.get("fabric") is not None:
            known["fabric"] = ScaleOutSpec.from_dict(known["fabric"])
        if known.get("chip") is not None:
            known["chip"] = ChipSpec.from_dict(known["chip"])
        return cls(**known)

    def canonical_json(self) -> str:
        """Deterministic JSON encoding — the universal cache identity."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def cache_key(self) -> str:
        """Hex digest of :meth:`canonical_json` (stable across processes)."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()[:16]

    # -- bindings ----------------------------------------------------------

    def override_dict(self) -> dict[str, Any]:
        """The simulator-config overrides as a plain dict."""
        return dict(self.overrides)

    def experiment_config(self) -> "ExperimentConfig":
        """The single-dataset :class:`ExperimentConfig` this request binds to."""
        from repro.harness.config import ExperimentConfig

        return ExperimentConfig(
            datasets=(self.dataset,),
            bandwidth_gbps=self.bandwidth_gbps,
            num_macs=self.num_macs,
            seed=self.seed,
            target_cluster_nodes=self.target_cluster_nodes,
            gcnax_tile=self.gcnax_tile,
            num_nodes_override=(
                {self.dataset: self.num_nodes} if self.num_nodes is not None else {}
            ),
            scenarios=(self.scenario,) if self.scenario is not None else (),
        )

    @classmethod
    def from_experiment(
        cls,
        config: "ExperimentConfig",
        dataset: str,
        backend: str = "grow",
        overrides: Mapping[str, Any] | None = None,
        partitioned: bool = True,
        fabric: ScaleOutSpec | None = None,
        chip: ChipSpec | None = None,
    ) -> "SimRequest":
        """Build the request equivalent to running ``dataset`` under an
        existing experiment configuration (the bridge the harness, DSE and
        scale-out layers use).  Scenario definitions carried by the
        configuration travel into the request."""
        return cls(
            dataset=dataset,
            backend=backend,
            bandwidth_gbps=config.bandwidth_gbps,
            num_macs=config.num_macs,
            seed=config.seed,
            target_cluster_nodes=config.target_cluster_nodes,
            gcnax_tile=config.gcnax_tile,
            num_nodes=config.num_nodes_override.get(dataset),
            partitioned=partitioned,
            overrides=dict(overrides or {}),
            fabric=fabric,
            chip=chip,
            scenario=config.scenario_for(dataset),
        )
