"""GROW's software preprocessing pass.

The paper augments the METIS graph partitioner with a pass that derives, for
every cluster, the list of its top-N high-degree nodes (Section V-C).  The
partitioned graph and the per-cluster HDN ID lists are computed once offline
and reused for every inference, so the runtime hardware only needs to fetch
one cluster's HDN ID list before starting that cluster.

:class:`GrowPreprocessor` produces a :class:`PreprocessPlan` from a graph (or
directly from an adjacency matrix); the GROW simulator consumes the plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.graph import Graph
from repro.graph.partition import PartitionResult, partition_graph
from repro.obs import trace
from repro.sparse.csr import CSRMatrix


@dataclass
class PreprocessPlan:
    """Output of the preprocessing pass, consumed by the GROW simulator.

    Attributes:
        num_nodes: number of graph nodes (rows of the adjacency matrix).
        cluster_of_node: cluster id of every node; identity plan has one cluster.
        clusters: node ids of each cluster, in processing order.
        hdn_lists: for each cluster, the node ids of its top-N high-degree
            nodes (the columns whose RHS rows will be pinned in the HDN cache).
        hdn_list_capacity: the N used when deriving the lists.
        partitioned: whether graph partitioning was applied.
        preprocessing_seconds: measured wall-clock cost of the offline pass
            (the paper quotes tens of milliseconds to tens of minutes).
    """

    num_nodes: int
    cluster_of_node: np.ndarray
    clusters: list[np.ndarray]
    hdn_lists: list[np.ndarray]
    hdn_list_capacity: int
    partitioned: bool
    preprocessing_seconds: float = 0.0

    @property
    def num_clusters(self) -> int:
        return len(self.clusters)

    def hdn_storage_bytes(self) -> int:
        """DRAM footprint of all clusters' HDN ID lists (3 bytes per id)."""
        return sum(int(lst.size) * 3 for lst in self.hdn_lists)

    def validate(self) -> None:
        """Check internal consistency (every node in exactly one cluster)."""
        seen = np.concatenate(self.clusters) if self.clusters else np.empty(0, dtype=np.int64)
        if seen.size != self.num_nodes or np.unique(seen).size != self.num_nodes:
            raise ValueError("clusters must cover every node exactly once")
        for cluster_id, hdns in enumerate(self.hdn_lists):
            if hdns.size > self.hdn_list_capacity:
                raise ValueError(f"cluster {cluster_id} HDN list exceeds capacity")


def _top_degree_within(
    adjacency: CSRMatrix, cluster_nodes: np.ndarray, capacity: int, intra_only: bool
) -> np.ndarray:
    """Top-``capacity`` columns most referenced by the cluster's rows.

    The reference count of a column is the number of non-zeros in the
    cluster's rows pointing at it; with ``intra_only`` the candidates are
    restricted to the cluster's own nodes (the paper's per-cluster HDN
    selection).
    """
    # Count column references from the cluster's rows only.  The rows' index
    # slices are gathered with one fancy-index (an arange shifted per row by
    # ``repeat``), which yields exactly the concatenation of the per-row
    # slices without a Python-level loop.
    starts = adjacency.indptr[cluster_nodes]
    ends = adjacency.indptr[cluster_nodes + 1]
    lengths = ends - starts
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    if cluster_nodes.size == adjacency.n_rows and np.array_equal(
        cluster_nodes, np.arange(adjacency.n_rows)
    ):
        gather = adjacency.indices
    else:
        offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]])
        take = np.repeat(starts - offsets, lengths) + np.arange(total)
        gather = adjacency.indices[take]
    counts = np.bincount(gather, minlength=adjacency.n_cols)
    if intra_only:
        mask = np.zeros(adjacency.n_cols, dtype=bool)
        mask[cluster_nodes] = True
        counts = np.where(mask, counts, 0)
    candidates = np.argsort(-counts, kind="stable")
    candidates = candidates[counts[candidates] > 0]
    return candidates[:capacity].astype(np.int64)


@dataclass
class GrowPreprocessor:
    """Builds :class:`PreprocessPlan` objects for the GROW simulator.

    Attributes:
        num_clusters: number of clusters to partition into (ignored when
            partitioning is disabled); ``None`` chooses one cluster per
            ``target_cluster_nodes`` nodes.
        target_cluster_nodes: desired nodes per cluster when ``num_clusters``
            is not given.
        hdn_list_capacity: maximum HDN ids per cluster (paper default 4096).
        partition_method: ``"metis"`` (multilevel) or ``"bfs"``.
        seed: RNG seed of the partitioner.
    """

    num_clusters: int | None = None
    target_cluster_nodes: int = 512
    hdn_list_capacity: int = 4096
    partition_method: str = "metis"
    seed: int = 0

    def plan_without_partitioning(self, adjacency: CSRMatrix) -> PreprocessPlan:
        """Plan that treats the whole graph as one cluster (no partitioning).

        The HDN list then simply holds the globally highest-degree nodes,
        which is the "GROW w/o G.P." configuration of Figures 17-22.
        """
        n = adjacency.n_rows
        all_nodes = np.arange(n, dtype=np.int64)
        with trace.span("preprocess.hdn_select", clusters=1, nodes=n):
            hdns = _top_degree_within(
                adjacency, all_nodes, self.hdn_list_capacity, intra_only=False
            )
        return PreprocessPlan(
            num_nodes=n,
            cluster_of_node=np.zeros(n, dtype=np.int64),
            clusters=[all_nodes],
            hdn_lists=[hdns],
            hdn_list_capacity=self.hdn_list_capacity,
            partitioned=False,
        )

    def plan_from_graph(self, graph: Graph, partitioned: bool = True) -> PreprocessPlan:
        """Plan built by partitioning a graph and deriving per-cluster HDN lists."""
        import time

        adjacency = graph.adjacency()
        if not partitioned:
            return self.plan_without_partitioning(adjacency)
        started = time.perf_counter()  # repro: allow(DET001) wall-time metadata, excluded from byte-identity
        clusters_wanted = self.num_clusters
        if clusters_wanted is None:
            clusters_wanted = max(1, graph.num_nodes // self.target_cluster_nodes)
        if clusters_wanted <= 1:
            plan = self.plan_without_partitioning(adjacency)
            plan.preprocessing_seconds = time.perf_counter() - started  # repro: allow(DET001) wall-time metadata, excluded from byte-identity
            return plan
        with trace.span(
            "preprocess.partition",
            nodes=graph.num_nodes,
            clusters=clusters_wanted,
            method=self.partition_method,
        ):
            partition = partition_graph(
                graph, clusters_wanted, method=self.partition_method, seed=self.seed
            )
        plan = self.plan_from_partition(adjacency, partition)
        plan.preprocessing_seconds = time.perf_counter() - started  # repro: allow(DET001) wall-time metadata, excluded from byte-identity
        return plan

    def plan_from_partition(
        self, adjacency: CSRMatrix, partition: PartitionResult, intra_only: bool = False
    ) -> PreprocessPlan:
        """Plan built from an existing partition of the adjacency matrix.

        For every cluster the HDN list holds the columns most referenced by
        that cluster's rows.  With ``intra_only`` the candidates are
        restricted to the cluster's own nodes (the strictest reading of the
        paper); the default also admits heavily referenced external hub
        nodes, which degrades gracefully on graphs with weak community
        structure (e.g. Reddit) and never lowers the hit rate.
        """
        with trace.span(
            "preprocess.hdn_select",
            clusters=partition.num_clusters,
            nodes=adjacency.n_rows,
        ):
            assignment = partition.assignment
            num_clusters = partition.num_clusters
            # Group nodes by cluster with one stable argsort: within a cluster
            # the stable sort preserves ascending node ids, so each slice
            # equals the ``np.where(assignment == cluster_id)`` scan it
            # replaces.
            node_order = np.argsort(assignment, kind="stable")
            sizes = np.bincount(assignment, minlength=num_clusters)
            bounds = np.concatenate([[0], np.cumsum(sizes)])

            # Derive every cluster's HDN list in one batched pass: count
            # distinct (cluster, column) reference pairs, then order candidates
            # per cluster by (count desc, column asc) — the exact order the
            # per-cluster ``np.argsort(-counts, kind="stable")`` produced —
            # and keep the top ``hdn_list_capacity`` of each.
            n_cols = adjacency.n_cols
            row_of_nnz = np.repeat(np.arange(adjacency.n_rows), np.diff(adjacency.indptr))
            pair_keys = assignment[row_of_nnz] * n_cols + adjacency.indices
            unique_pairs, pair_counts = np.unique(pair_keys, return_counts=True)
            pair_cluster = unique_pairs // n_cols
            pair_col = unique_pairs % n_cols
            if intra_only:
                in_range = pair_col < assignment.size
                keep = in_range.copy()
                keep[in_range] = assignment[pair_col[in_range]] == pair_cluster[in_range]
                pair_cluster = pair_cluster[keep]
                pair_col = pair_col[keep]
                pair_counts = pair_counts[keep]
            candidate_order = np.lexsort((pair_col, -pair_counts, pair_cluster))
            cand_cluster = pair_cluster[candidate_order]
            cand_col = pair_col[candidate_order]
            cand_bounds = np.searchsorted(cand_cluster, np.arange(num_clusters + 1))

            clusters: list[np.ndarray] = []
            hdn_lists: list[np.ndarray] = []
            for cluster_id in range(num_clusters):
                nodes = node_order[bounds[cluster_id] : bounds[cluster_id + 1]].astype(np.int64)
                if nodes.size == 0:
                    continue
                clusters.append(nodes)
                start = cand_bounds[cluster_id]
                end = min(cand_bounds[cluster_id + 1], start + self.hdn_list_capacity)
                hdn_lists.append(cand_col[start:end].astype(np.int64))
        return PreprocessPlan(
            num_nodes=adjacency.n_rows,
            cluster_of_node=partition.assignment.copy(),
            clusters=clusters,
            hdn_lists=hdn_lists,
            hdn_list_capacity=self.hdn_list_capacity,
            partitioned=True,
        )
