"""GAMMA baseline: Gustavson sparse-sparse GEMM accelerator with a fiber cache.

GAMMA (Zhang et al., ASPLOS 2021) also uses the row-wise product, and unlike
MatRaptor it has an on-chip "fiber cache" that retains recently used RHS
rows.  The paper's Section VII-H points out why it still loses to GROW on
GCNs: the fiber cache is a generic recency-managed cache, not aware of the
power-law degree distribution, and the RHS is CSR-compressed, adding metadata
traffic.  The model below simulates the fiber cache with LRU replacement over
the actual column-reference stream of the sparse LHS, so its hit rate
reflects the real reuse pattern of each graph.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.accelerators.base import (
    KB,
    NNZ_BYTES,
    AcceleratorConfig,
    AcceleratorResult,
    PhaseStats,
    combine_results,
)
from repro.accelerators.workload import LayerWorkload, SpDeGemmPhase


@dataclass(frozen=True)
class GAMMAConfig:
    """GAMMA architecture parameters.

    Attributes:
        arch: shared architecture parameters.
        fiber_cache_bytes: capacity of the recency-managed RHS row cache.
        merge_overhead_factor: compute overhead of the high-radix merge
            (smaller than MatRaptor's sort-based merge).
    """

    arch: AcceleratorConfig = field(default_factory=AcceleratorConfig)
    fiber_cache_bytes: int = 128 * KB
    merge_overhead_factor: float = 1.1


def simulate_lru_hits(column_stream: np.ndarray, capacity_rows: int) -> tuple[int, int]:
    """Run an LRU cache of ``capacity_rows`` entries over a row-reference stream.

    Returns ``(hits, misses)``.  This is the only sequential (non-vectorised)
    loop in the baseline models; an LRU cache is inherently order-dependent.
    """
    if capacity_rows <= 0:
        return 0, int(column_stream.size)
    cache: OrderedDict[int, None] = OrderedDict()
    hits = 0
    misses = 0
    for column in column_stream.tolist():
        if column in cache:
            hits += 1
            cache.move_to_end(column)
        else:
            misses += 1
            cache[column] = None
            if len(cache) > capacity_rows:
                cache.popitem(last=False)
    return hits, misses


class GAMMASimulator:
    """Cycle-accounting model of GAMMA running the GCN SpDeGEMMs."""

    name = "gamma"

    def __init__(self, config: GAMMAConfig | None = None) -> None:
        self.config = config or GAMMAConfig()

    def run_phase(self, phase: SpDeGemmPhase) -> PhaseStats:
        """Simulate one SpDeGEMM phase on GAMMA."""
        cfg = self.config
        arch = cfg.arch
        granularity = arch.access_granularity

        lhs_requested = phase.sparse.nnz * NNZ_BYTES
        lhs_transferred = -(-lhs_requested // granularity) * granularity

        # The fiber cache holds CSR-compressed RHS rows.
        rhs_row_bytes = phase.rhs_cols * NNZ_BYTES
        rhs_row_lines = -(-rhs_row_bytes // granularity)
        capacity_rows = cfg.fiber_cache_bytes // max(1, rhs_row_bytes)

        if phase.rhs_resident:
            hits, misses = phase.sparse.nnz, 0
            rhs_fetches = phase.dense_shape[0]
        else:
            hits, misses = simulate_lru_hits(phase.sparse.indices, capacity_rows)
            rhs_fetches = misses
        rhs_requested = rhs_fetches * rhs_row_bytes
        rhs_transferred = rhs_fetches * rhs_row_lines * granularity

        output_elements = phase.output_shape[0] * phase.output_shape[1]
        output_bytes = -(-output_elements * NNZ_BYTES // granularity) * granularity

        mac_ops = phase.mac_operations
        compute_cycles = mac_ops * cfg.merge_overhead_factor / arch.num_macs
        dram_read = lhs_transferred + rhs_transferred
        dram_write = output_bytes
        memory_cycles = (dram_read + dram_write) / arch.bytes_per_cycle

        total_lookups = hits + misses
        return PhaseStats(
            name=phase.name,
            compute_cycles=compute_cycles,
            memory_cycles=memory_cycles,
            stall_cycles=0.0,
            mac_operations=mac_ops,
            dram_read_bytes=dram_read,
            dram_write_bytes=dram_write,
            requested_read_bytes=lhs_requested + rhs_requested,
            sram_access_bytes={
                "fiber_cache": total_lookups * rhs_row_bytes,
                "stream_buffer": lhs_transferred,
            },
            extra={
                "fiber_cache_hit_rate": hits / total_lookups if total_lookups else 0.0,
                "fiber_cache_capacity_rows": float(capacity_rows),
            },
        )

    def run_layer(self, workload: LayerWorkload) -> AcceleratorResult:
        """Simulate the two phases of one GCN layer."""
        result = AcceleratorResult(accelerator=self.name, workload=workload.name)
        for phase in workload.phases:
            result.phases.append(self.run_phase(phase))
        result.sram_capacities = {"fiber_cache": self.config.fiber_cache_bytes}
        return result

    def run_model(self, workloads: list[LayerWorkload], name: str | None = None) -> AcceleratorResult:
        """Simulate all layers of a model back to back."""
        results = [self.run_layer(w) for w in workloads]
        combined = combine_results(results, workload=name or workloads[0].name)
        combined.sram_capacities = results[0].sram_capacities
        return combined
