"""CONC: worker purity — pool-reachable code must not touch shared state.

Every fan-out in this repo ships requests to spawn-start
``ProcessPoolExecutor`` workers and relies on the serial == parallel ==
memo == disk byte-identity contract.  A worker that writes module-level
state, reconfigures the process-global tracer/metrics, or reads the
clock/environment produces results that depend on *which process* ran
the request — exactly what the contract forbids, and a hard blocker for
the roadmap's multi-host execution (workers claiming requests by cache
key across machines).

The family is whole-program: entry points are the callables handed to a
pool (the set POOL001 polices), and the rules walk everything reachable
from them through :mod:`repro.analyze.callgraph`.

* ``CONC001`` — writes to module-level mutable state in worker-reachable
  code: ``global`` rebinding, mutation of module-level containers
  (subscript stores, ``.append``/``.update``/``.pop``/...), and attribute
  assignment on imported modules/objects.  Per-process memos that workers
  rebuild deterministically are the sanctioned exception — each carries
  an inline ``# repro: allow(CONC001) reason``.
* ``CONC002`` — process-global telemetry reconfiguration
  (``trace.enable/disable/drain/clear/ingest``, ``metrics.merge/reset``,
  ``configure_logging``) in worker-reachable code.  Workers use the
  scoped protocol instead: ``with trace.collect() ... metrics.scoped()``;
  thread-safe recording calls (``metrics.inc``, ``trace.span``) are fine.
* ``CONC003`` — wall-clock or environment reads in worker-reachable code
  that do not already carry a justified ``allow(DET001)``/``allow(DET003)``
  — the per-layer DET rules catch these stylistically; CONC003 restates
  the ones that additionally sit on the parallel path.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analyze.callgraph import (
    CallGraph,
    FunctionInfo,
    graph_for,
    module_level_names,
    pool_entry_points,
    short_name,
)
from repro.analyze.contracts import CheckConfig
from repro.analyze.findings import Finding
from repro.analyze.project import ModuleInfo, Project
from repro.analyze.rules.base import Rule, register
from repro.analyze.rules.determinism import (
    CLOCK_CALLS,
    build_alias_map,
    canonical_call_name,
)

#: Methods that mutate their receiver in place (list/dict/set/deque).
_MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "clear", "pop",
        "popitem", "setdefault", "remove", "discard", "sort", "reverse",
        "appendleft", "extendleft",
    }
)

#: Canonical-name suffixes of process-global telemetry reconfiguration.
#: Recording calls (``metrics.inc``/``observe``, ``trace.span``) are
#: thread- and scope-safe by design and deliberately absent.
_OBS_MUTATOR_SUFFIXES = (
    "trace.enable", "trace.disable", "trace.drain", "trace.clear",
    "trace.ingest", "metrics.merge", "metrics.reset", "configure_logging",
)


def _local_bindings(func: ast.AST) -> set[str]:
    """Names bound locally inside a function: parameters plus every Store
    target *not* declared ``global``/``nonlocal`` — these shadow any
    same-named module-level state."""
    declared_global: set[str] = set()
    stored: set[str] = set()
    params: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            declared_global.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            stored.add(node.id)
        elif isinstance(node, ast.arg):
            params.add(node.arg)
    return params | (stored - declared_global)


def _worker_closure(
    project: Project, config: CheckConfig
) -> tuple[CallGraph, list[FunctionInfo]]:
    """The call graph plus every worker-reachable function in a
    determinism-scoped layer, in deterministic order."""
    graph = graph_for(project)
    entries = pool_entry_points(project, graph)
    reachable = graph.reachable(entries)
    functions = [
        graph.functions[qual]
        for qual in sorted(reachable)
        if graph.functions[qual].module.layer in config.determinism_scope
    ]
    return graph, functions


_short_name = short_name


@register
class WorkersKeepModuleStateIntact(Rule):
    rule_id = "CONC001"
    family = "CONC"
    summary = "pool-worker-reachable code must not write module-level state"
    contract = "docs/architecture.md serial == parallel byte-identity (PR 4, PR 10)"

    def check(self, project: Project, config: CheckConfig) -> Iterator[Finding]:
        _, functions = _worker_closure(project, config)
        seen: set[tuple] = set()
        for info in functions:
            for finding in self._check_function(info):
                key = (finding.path, finding.line, finding.message)
                if key not in seen:
                    seen.add(key)
                    yield finding

    def _check_function(self, info: FunctionInfo) -> Iterator[Finding]:
        module = info.module
        module_names = module_level_names(module)
        locals_ = _local_bindings(info.node)
        declared_global: set[str] = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)

        def is_module_state(name: str) -> bool:
            return (name in module_names or name in declared_global) and (
                name not in locals_ or name in declared_global
            )

        short = _short_name(info)
        for node in ast.walk(info.node):
            # global X; X = ... — rebinding shared module state.
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                if node.id in declared_global:
                    yield self.finding(
                        module,
                        node.lineno,
                        f"worker-reachable '{short}' rebinds module global "
                        f"'{node.id}'; a pool worker's write never reaches "
                        f"the parent — results would depend on which process "
                        f"ran the request",
                    )
            # X[k] = ... / del X[k] on a module-level container.
            elif isinstance(node, ast.Subscript) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                if isinstance(node.value, ast.Name) and is_module_state(node.value.id):
                    yield self.finding(
                        module,
                        node.lineno,
                        f"worker-reachable '{short}' mutates module-level "
                        f"container '{node.value.id}' by subscript; "
                        f"per-process memos need an inline justification "
                        f"('# repro: allow(CONC001) reason')",
                    )
            # X.append(...) / X.pop(...) on a module-level container.
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATOR_METHODS
                and isinstance(node.func.value, ast.Name)
                and is_module_state(node.func.value.id)
            ):
                yield self.finding(
                    module,
                    node.lineno,
                    f"worker-reachable '{short}' calls "
                    f"{node.func.value.id}.{node.func.attr}() on module-level "
                    f"state; per-process memos need an inline justification "
                    f"('# repro: allow(CONC001) reason')",
                )
            # mod.ATTR = ... — attribute assignment on an imported name.
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                aliases = build_alias_map(module)
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id not in locals_
                        and target.value.id in aliases
                    ):
                        yield self.finding(
                            module,
                            node.lineno,
                            f"worker-reachable '{short}' assigns "
                            f"{target.value.id}.{target.attr}; attribute "
                            f"writes on imported modules/objects are shared "
                            f"state the pool workers cannot see",
                        )


@register
class WorkersUseScopedTelemetry(Rule):
    rule_id = "CONC002"
    family = "CONC"
    summary = "pool-worker-reachable code must not reconfigure global telemetry"
    contract = "docs/architecture.md worker telemetry side-channel (PR 7, PR 10)"

    def check(self, project: Project, config: CheckConfig) -> Iterator[Finding]:
        _, functions = _worker_closure(project, config)
        seen: set[tuple] = set()
        for info in functions:
            aliases = build_alias_map(info.module)
            short = _short_name(info)
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                name = canonical_call_name(node.func, aliases)
                if name is None:
                    continue
                if not any(
                    name == suffix or name.endswith("." + suffix)
                    for suffix in _OBS_MUTATOR_SUFFIXES
                ):
                    continue
                tail = ".".join(name.split(".")[-2:])
                finding = self.finding(
                    info.module,
                    node.lineno,
                    f"worker-reachable '{short}' calls {tail}() — "
                    f"process-global telemetry reconfiguration; workers "
                    f"record through trace.collect()/metrics.scoped() "
                    f"instead (justify parent-only branches with "
                    f"'# repro: allow(CONC002) reason')",
                )
                key = (finding.path, finding.line, finding.message)
                if key not in seen:
                    seen.add(key)
                    yield finding


@register
class WorkersAvoidAmbientReads(Rule):
    rule_id = "CONC003"
    family = "CONC"
    summary = "pool-worker-reachable clock/env reads need a justified allow()"
    contract = "docs/architecture.md byte-identity across processes (PR 4, PR 10)"

    def check(self, project: Project, config: CheckConfig) -> Iterator[Finding]:
        _, functions = _worker_closure(project, config)
        seen: set[tuple] = set()
        for info in functions:
            module = info.module
            aliases = build_alias_map(module)
            short = _short_name(info)
            for node in ast.walk(info.node):
                finding = None
                if isinstance(node, ast.Call):
                    name = canonical_call_name(node.func, aliases)
                    if name in CLOCK_CALLS and not module.suppressions.allows(
                        node.lineno, "DET001"
                    ):
                        finding = self.finding(
                            module,
                            node.lineno,
                            f"worker-reachable '{short}' reads the wall clock "
                            f"({name}()) with no justified allow(DET001); "
                            f"worker results must be functions of the request "
                            f"alone",
                        )
                    elif name == "os.getenv" and not module.suppressions.allows(
                        node.lineno, "DET003"
                    ):
                        finding = self.finding(
                            module,
                            node.lineno,
                            f"worker-reachable '{short}' reads the environment "
                            f"(os.getenv()) with no justified allow(DET003); "
                            f"spawn workers inherit a snapshot, not the "
                            f"parent's live environment",
                        )
                elif isinstance(node, ast.Attribute):
                    name = canonical_call_name(node, aliases)
                    if name == "os.environ" and not module.suppressions.allows(
                        node.lineno, "DET003"
                    ):
                        finding = self.finding(
                            module,
                            node.lineno,
                            f"worker-reachable '{short}' reads the environment "
                            f"(os.environ) with no justified allow(DET003); "
                            f"spawn workers inherit a snapshot, not the "
                            f"parent's live environment",
                        )
                if finding is not None:
                    key = (finding.path, finding.line, finding.message)
                    if key not in seen:
                        seen.add(key)
                        yield finding
