"""Benchmark regenerating Table IV: area breakdown of GROW vs GCNAX."""

from repro.energy.area import GCNAX_AREA_MM2_40NM


def test_table4_area(suite_report):
    result = suite_report.result("table4_area")
    by_component = {row["component"]: row for row in result.rows}
    total_65 = by_component["total"]["area_mm2_65nm"]
    total_40 = by_component["total"]["area_mm2_40nm"]
    # Paper: 5.785 mm^2 at 65 nm, about 2.2 mm^2 when scaled to 40 nm.
    assert abs(total_65 - 5.785) < 0.05
    assert abs(total_40 - 2.19) < 0.1
    # GROW at 40 nm is smaller than GCNAX's published 6.51 mm^2.
    assert total_40 < GCNAX_AREA_MM2_40NM
    # The HDN cache is the single largest component.
    largest = max(
        (row for row in result.rows if row["component"] != "total"),
        key=lambda row: row["area_mm2_65nm"],
    )
    assert largest["component"] == "hdn_cache"
