"""Benchmark regenerating Figure 3: densities of the four GCN matrices."""

from conftest import run_and_record


def test_fig3_density(benchmark, experiment_config):
    result = run_and_record(benchmark, "fig3_density", experiment_config)
    for row in result.rows:
        # A is always far sparser than the dense RHS matrices, and W is dense.
        assert row["density_A"] < 0.1
        assert row["density_W"] == 1.0
        assert row["density_XW"] > 0.5
        # The heterogeneous-sparsity observation: A is much sparser than X.
        assert row["density_A"] < row["density_X"] + 1e-12
