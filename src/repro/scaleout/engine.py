"""The scale-out simulator: compose per-chip GROW runs into system results.

:class:`ScaleOutSimulator` is the one entry point behind ``python -m repro
scaleout`` and the ``scaling_out`` experiment family.  For one dataset it

1. builds the workload bundle and shards the preprocessing plan's clusters
   across the topology's chips (:mod:`repro.scaleout.shard`),
2. runs one single-chip GROW simulation per non-empty shard over that
   chip's row-sliced workloads, each expressed as a chip-sliced ``grow``
   :class:`~repro.api.request.SimRequest` and executed through an API
   :class:`~repro.api.session.Session` — which supplies the process-pool
   fan-out, the in-process memo and the on-disk
   :class:`~repro.harness.cache.ResultCache` wiring,
3. prices the per-layer halo/reduction exchanges on the interconnect
   (:mod:`repro.scaleout.interconnect`), and
4. composes per-layer system cycles: chips run between per-layer barriers,
   bandwidth-bound communication overlaps compute (``max``), and the
   farthest active exchange's hop latency is exposed — the same
   overlap-then-expose shape as runahead over DRAM.

Because per-chip runs are deterministic functions of ``(dataset, config,
shard, chip)`` and the session normalises every fresh result through its
JSON form before composition, serial, parallel and cached re-runs of the
same system produce identical :class:`ScaleOutResult` objects.  Chip
requests deliberately omit the fabric's link parameters, so chip-count/
topology/bandwidth sweeps and the 1-chip baseline share every per-chip
cache entry.  A one-chip system degenerates to exactly the single-chip
simulator's cycles and DRAM traffic.

Modeling note — halo rows touch *two* channels, deliberately: the exchange
moves each remote XW row across the fabric once (link cycles + link
energy), staging it into the receiving chip's local memory; the per-chip
simulation then reads every referenced row from local DRAM exactly as the
single-chip model would (a row missed by several clusters is re-read per
miss, which a single fabric transfer cannot stand in for).  ``dram_bytes``
and ``interchip_bytes`` therefore count different wires, not the same byte
twice; the staging *write* into local DRAM is the one transfer the model
rounds away.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.accelerators.base import AcceleratorResult, merge_sram_events
from repro.api import ChipSpec, Session, SimRequest
from repro.api.session import clear_memo as _clear_api_memo
from repro.energy.area import grow_area_breakdown
from repro.energy.energy_model import estimate_energy
from repro.harness.cache import ResultCache
from repro.harness.config import ExperimentConfig, default_config
from repro.harness.report import ExperimentResult
from repro.harness.suite import DEFAULT_RESULTS_DIR
from repro.harness.workloads import get_bundle
from repro.obs import metrics as obs_metrics
from repro.obs import record_run, trace
from repro.scaleout.interconnect import InterconnectModel
from repro.scaleout.shard import ShardPlan, build_shard_plan
from repro.scaleout.topology import ChipTopology

#: Short topology tags used in report/file names.
_KIND_TAGS = {"ring": "ring", "mesh": "mesh", "fully-connected": "fc"}

#: Per-process memo of shard plans (mirrors the workload-bundle memo).
_SHARD_CACHE: dict[tuple, ShardPlan] = {}


def _shard_cache_key(
    dataset: str, config: ExperimentConfig, num_chips: int, method: str
) -> tuple:
    return (
        dataset,
        config.seed,
        config.num_nodes_override.get(dataset),
        config.target_cluster_nodes,
        num_chips,
        method,
        # Scenario datasets shard by their full definition, not just a name
        # (including registry-resolved scenarios the config does not carry).
        config.effective_scenario(dataset),
    )


def get_shard_plan(
    dataset: str, config: ExperimentConfig, num_chips: int, method: str = "metis"
) -> ShardPlan:
    """Build (or fetch from the per-process memo) one dataset's shard plan."""
    key = _shard_cache_key(dataset, config, num_chips, method)
    if key not in _SHARD_CACHE:
        bundle = get_bundle(dataset, config)
        with trace.span(
            "scaleout.shard_plan", dataset=dataset, chips=num_chips, method=method
        ):
            # repro: allow(CONC001) per-process shard-plan memo; workers rebuild plans deterministically from (dataset, config, chips, method)
            _SHARD_CACHE[key] = build_shard_plan(
                bundle.dataset.graph, bundle.plan, num_chips, method=method, seed=config.seed
            )
    return _SHARD_CACHE[key]


def clear_shard_cache() -> None:
    """Drop memoised shard plans (used by tests that vary global state)."""
    _SHARD_CACHE.clear()


def clear_chip_memo() -> None:
    """Drop memoised per-chip results (used by tests that vary global state).

    Per-chip runs are memoised by the API session layer since the facade
    landed; this clears that shared memo.
    """
    _clear_api_memo()


@dataclass
class ChipOutcome:
    """What happened to one chip of a scale-out run."""

    chip_id: int
    status: str  # "ran", "cached" or "empty"
    result: AcceleratorResult
    seconds: float = 0.0


@dataclass
class ScaleOutResult:
    """System-level outcome of simulating one dataset on a multi-chip system.

    Attributes:
        dataset: dataset name.
        topology: the fabric's :meth:`~repro.scaleout.topology.ChipTopology.
            fingerprint`.
        shard: the shard plan's fingerprint (nodes per chip, halo totals).
        exchange: configured exchange pattern (``halo``/``reduce``/``auto``).
        system_cycles: end-to-end latency with per-layer barriers.
        single_chip_cycles: the one-chip baseline latency of the same
            dataset and GROW configuration.
        speedup_vs_single_chip: baseline cycles over system cycles.
        scaling_efficiency: speedup divided by the chip count (strong
            scaling efficiency; 1.0 for one chip by construction).
        chip_cycles: per-chip total cycles, indexed by chip id.
        chip_statuses: per-chip ``ran``/``cached``/``empty``.
        dram_bytes: DRAM traffic summed over chips (local channels).
        interchip_bytes: bytes injected into the inter-chip fabric.
        interchip_hop_bytes: bytes x hops (link occupancy).
        comm_transfer_cycles: serialization cycles summed over layers
            (overlapped with compute in the composition).
        comm_exposed_cycles: exposed synchronisation latency summed over
            layers (always part of ``system_cycles``).
        energy_nj: chip energy plus link energy.
        interconnect_energy_nj: the link-energy share of ``energy_nj``.
        area_mm2: total silicon (chip area x chip count).
        layers: per-layer breakdown dicts (chip-compute bound, exchange).
    """

    dataset: str
    topology: dict[str, Any]
    shard: dict[str, Any]
    exchange: str
    system_cycles: float
    single_chip_cycles: float
    speedup_vs_single_chip: float
    scaling_efficiency: float
    chip_cycles: list[float]
    chip_statuses: list[str]
    dram_bytes: int
    interchip_bytes: int
    interchip_hop_bytes: int
    comm_transfer_cycles: float
    comm_exposed_cycles: float
    energy_nj: float
    interconnect_energy_nj: float
    area_mm2: float
    layers: list[dict[str, Any]] = field(default_factory=list)

    @property
    def num_chips(self) -> int:
        return int(self.topology["num_chips"])

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form (identical across serial/parallel/cached runs,
        except for the ran-vs-cached chip statuses)."""
        return {
            "dataset": self.dataset,
            "topology": dict(self.topology),
            "shard": dict(self.shard),
            "exchange": self.exchange,
            "system_cycles": self.system_cycles,
            "single_chip_cycles": self.single_chip_cycles,
            "speedup_vs_single_chip": self.speedup_vs_single_chip,
            "scaling_efficiency": self.scaling_efficiency,
            "chip_cycles": list(self.chip_cycles),
            "chip_statuses": list(self.chip_statuses),
            "dram_bytes": self.dram_bytes,
            "interchip_bytes": self.interchip_bytes,
            "interchip_hop_bytes": self.interchip_hop_bytes,
            "comm_transfer_cycles": self.comm_transfer_cycles,
            "comm_exposed_cycles": self.comm_exposed_cycles,
            "energy_nj": self.energy_nj,
            "interconnect_energy_nj": self.interconnect_energy_nj,
            "area_mm2": self.area_mm2,
            "layers": [dict(layer) for layer in self.layers],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ScaleOutResult":
        """Rebuild a system result from its :meth:`to_dict` form (e.g. the
        ``detail["system"]`` payload of an API ``scaleout`` run)."""
        known = {k: data[k] for k in cls.__dataclass_fields__ if k in data}
        return cls(**known)

    def comparable_dict(self) -> dict[str, Any]:
        """:meth:`to_dict` minus execution provenance (chip statuses), i.e.
        the fields serial, parallel and cached re-runs must agree on."""
        data = self.to_dict()
        data.pop("chip_statuses")
        return data

    def as_row(self) -> dict[str, Any]:
        """Flat summary row for :class:`~repro.harness.report.ExperimentResult`."""
        return {
            "dataset": self.dataset,
            "chips": self.num_chips,
            "topology": self.topology["kind"],
            "system_cycles": self.system_cycles,
            "speedup": self.speedup_vs_single_chip,
            "efficiency": self.scaling_efficiency,
            "interchip_mb": self.interchip_bytes / 1e6,
            "comm_cycles": self.comm_transfer_cycles + self.comm_exposed_cycles,
            "dram_mb": self.dram_bytes / 1e6,
            "energy_uj": self.energy_nj / 1000.0,
        }


class ScaleOutSimulator:
    """Simulate a multi-chip GROW system over one experiment configuration.

    Args:
        config: experiment configuration naming datasets, bandwidth, seed
            (:func:`~repro.harness.config.default_config` when omitted).
        topology: the chip fabric; a plain chip count builds the default
            ring (``ChipTopology(num_chips)``).
        exchange: inter-chip exchange pattern (``"halo"``, ``"reduce"`` or
            ``"auto"``).
        shard_method: cluster-to-chip assignment (``"metis"`` or ``"greedy"``).
        grow_overrides: per-chip :class:`~repro.core.config.GrowConfig`
            field overrides (e.g. ``runahead_degree=32``).
        jobs: worker processes for the per-chip fan-out; ``1`` runs serially
            in-process, ``0`` uses one worker per CPU.
        cache: per-chip result cache; built under ``results_dir / "cache"``
            (shared with the suite) when omitted and ``use_cache`` is True.
        use_cache: disable to always recompute and never read/write entries.
        memoize: disable the process-wide in-memory memo as well (tests or
            callers that vary global simulator state).
        force: recompute even on a cache hit (fresh results are re-cached).
        results_dir: where ``scaleout_*.{json,md}`` reports are written by
            :meth:`write_reports`; ``None`` skips report files and (without
            an explicit ``cache``) disables caching.
    """

    def __init__(
        self,
        config: ExperimentConfig | None = None,
        topology: ChipTopology | int = 1,
        exchange: str = "halo",
        shard_method: str = "metis",
        grow_overrides: dict | None = None,
        jobs: int = 1,
        cache: ResultCache | None = None,
        use_cache: bool = True,
        memoize: bool = True,
        force: bool = False,
        results_dir: str | Path | None = None,
    ):
        self.config = config if config is not None else default_config()
        self.topology = (
            topology if isinstance(topology, ChipTopology) else ChipTopology(int(topology))
        )
        self.interconnect = InterconnectModel(self.topology, exchange=exchange)
        self.exchange = exchange
        self.shard_method = shard_method
        self.grow_overrides = dict(grow_overrides or {})
        self.jobs = jobs if jobs > 0 else (os.cpu_count() or 1)
        self.results_dir = Path(results_dir) if results_dir is not None else None
        self.use_cache = use_cache
        self.force_recompute = force
        if cache is not None:
            self.cache = cache
        elif use_cache and self.results_dir is not None:
            self.cache = ResultCache(self.results_dir / "cache")
        else:
            self.cache = None
        # The facade session behind every per-chip run: supplies the memo,
        # the on-disk cache wiring and the process-pool fan-out.
        self.session = Session(
            cache=self.cache,
            use_cache=self.use_cache and self.cache is not None,
            force=self.force_recompute,
            jobs=self.jobs,
            memoize=memoize,
        )

    # -- per-chip evaluation ----------------------------------------------

    def _chip_request(self, dataset: str, num_chips: int, chip_id: int) -> SimRequest:
        """The chip-sliced ``grow`` request of one shard.

        Deliberately independent of the fabric's link parameters: the
        per-chip simulation only depends on the shard (dataset, chip count,
        method) and the GROW configuration, so bandwidth/latency/topology
        sweeps over the same system share every chip entry.
        """
        return SimRequest.from_experiment(
            self.config,
            dataset,
            backend="grow",
            overrides=self.grow_overrides,
            chip=ChipSpec(
                num_chips=num_chips, chip_id=chip_id, shard_method=self.shard_method
            ),
        )

    def _evaluate_chips(
        self, dataset: str, num_chips: int, shard_plan: ShardPlan
    ) -> list[ChipOutcome]:
        """One outcome per chip, in chip order; empty shards skip simulation."""
        outcomes: list[ChipOutcome | None] = [None] * num_chips
        to_run: list[int] = []
        for chip_id, shard in enumerate(shard_plan.shards):
            if shard.empty:
                outcomes[chip_id] = ChipOutcome(
                    chip_id=chip_id,
                    status="empty",
                    result=AcceleratorResult(
                        accelerator="grow", workload=f"{dataset}[chip{chip_id}/{num_chips}]"
                    ),
                )
            else:
                to_run.append(chip_id)

        runs = self.session.run_batch(
            [self._chip_request(dataset, num_chips, chip_id) for chip_id in to_run]
        )
        for chip_id, run in zip(to_run, runs):
            outcomes[chip_id] = ChipOutcome(
                chip_id=chip_id,
                status=run.status,
                result=run.accelerator_result(),
                seconds=run.seconds,
            )
        for outcome in outcomes:
            obs_metrics.inc(f"scaleout.chips_{outcome.status}")
        return outcomes  # every slot is filled by construction

    # -- composition -------------------------------------------------------

    def _chip_area_mm2(self) -> float:
        grow_config = self.config.grow_config(**self.grow_overrides)
        return grow_area_breakdown(
            num_macs=grow_config.arch.num_macs,
            sparse_buffer_bytes=grow_config.sparse_buffer_bytes,
            hdn_id_bytes=grow_config.hdn_id_list_bytes,
            hdn_cache_bytes=grow_config.hdn_cache_bytes,
            output_buffer_bytes=grow_config.output_buffer_bytes,
        ).total_mm2

    def _compose(
        self,
        dataset: str,
        shard_plan: ShardPlan,
        outcomes: Sequence[ChipOutcome],
        single_chip_cycles: float,
    ) -> ScaleOutResult:
        bundle = get_bundle(dataset, self.config)
        num_layers = len(bundle.workloads)
        num_chips = self.topology.num_chips

        layers: list[dict[str, Any]] = []
        system_cycles = 0.0
        interchip_bytes = 0
        interchip_hop_bytes = 0
        comm_transfer = 0.0
        comm_exposed = 0.0
        with trace.span(
            "scaleout.compose", dataset=dataset, chips=num_chips, layers=num_layers
        ):
            for layer_index in range(num_layers):
                chip_layer_cycles = []
                for outcome in outcomes:
                    phases = outcome.result.phases[2 * layer_index : 2 * layer_index + 2]
                    chip_layer_cycles.append(sum(phase.total_cycles for phase in phases))
                exchange = self.interconnect.layer_exchange(
                    shard_plan, bundle.workloads[layer_index].aggregation.rhs_row_bytes
                )
                compute_bound = max(chip_layer_cycles) if chip_layer_cycles else 0.0
                layer_cycles = (
                    max(compute_bound, exchange.transfer_cycles)
                    + exchange.exposed_latency_cycles
                )
                system_cycles += layer_cycles
                interchip_bytes += exchange.total_bytes
                interchip_hop_bytes += exchange.hop_bytes
                comm_transfer += exchange.transfer_cycles
                comm_exposed += exchange.exposed_latency_cycles
                layers.append(
                    {
                        "layer": bundle.workloads[layer_index].name,
                        "compute_bound_cycles": compute_bound,
                        "system_cycles": layer_cycles,
                        "exchange": exchange.as_dict(),
                    }
                )
        obs_metrics.inc("scaleout.interchip_bytes", int(interchip_bytes))
        obs_metrics.inc("scaleout.interchip_hop_bytes", int(interchip_hop_bytes))

        # -- energy over the whole system.
        mac_operations = sum(o.result.total_mac_operations for o in outcomes)
        dram_bytes = sum(o.result.total_dram_bytes for o in outcomes)
        sram_events = merge_sram_events([o.result for o in outcomes])
        area_mm2 = self._chip_area_mm2() * num_chips
        chip_energy = estimate_energy(
            mac_operations=mac_operations,
            dram_bytes=dram_bytes,
            sram_access_events=sram_events,
            runtime_cycles=system_cycles,
            area_mm2=area_mm2,
        )
        link_energy_nj = self.interconnect.energy_nj(interchip_hop_bytes)

        speedup = single_chip_cycles / system_cycles if system_cycles else float("inf")
        return ScaleOutResult(
            dataset=dataset,
            topology=self.topology.fingerprint(),
            shard=shard_plan.fingerprint(),
            exchange=self.exchange,
            system_cycles=float(system_cycles),
            single_chip_cycles=float(single_chip_cycles),
            speedup_vs_single_chip=float(speedup),
            scaling_efficiency=float(speedup / num_chips),
            chip_cycles=[float(o.result.total_cycles) for o in outcomes],
            chip_statuses=[o.status for o in outcomes],
            dram_bytes=int(dram_bytes),
            interchip_bytes=int(interchip_bytes),
            interchip_hop_bytes=int(interchip_hop_bytes),
            comm_transfer_cycles=float(comm_transfer),
            comm_exposed_cycles=float(comm_exposed),
            energy_nj=float(chip_energy.total_nj + link_energy_nj),
            interconnect_energy_nj=float(link_energy_nj),
            area_mm2=float(area_mm2),
            layers=layers,
        )

    # -- entry points ------------------------------------------------------

    def _single_chip_total_cycles(self, dataset: str) -> float:
        """The one-chip baseline, via the same cached per-chip machinery so a
        chip-count sweep pays for it once."""
        shard_plan = get_shard_plan(dataset, self.config, 1, self.shard_method)
        outcome = self._evaluate_chips(dataset, 1, shard_plan)[0]
        return float(outcome.result.total_cycles)

    def run(self, dataset: str) -> ScaleOutResult:
        """Simulate one dataset on the configured system."""
        if dataset not in self.config.datasets:
            raise KeyError(
                f"dataset {dataset!r} is not part of this configuration "
                f"{list(self.config.datasets)}"
            )
        num_chips = self.topology.num_chips
        started = time.perf_counter()  # repro: allow(DET001) wall-time metadata, excluded from byte-identity
        try:
            with trace.span("scaleout.run", dataset=dataset, chips=num_chips):
                shard_plan = get_shard_plan(
                    dataset, self.config, num_chips, self.shard_method
                )
                outcomes = self._evaluate_chips(dataset, num_chips, shard_plan)
                if num_chips == 1:
                    single_chip_cycles = float(outcomes[0].result.total_cycles)
                else:
                    single_chip_cycles = self._single_chip_total_cycles(dataset)
                result = self._compose(
                    dataset, shard_plan, outcomes, single_chip_cycles
                )
        except Exception:
            record_run(
                "scaleout",
                f"{self.report_name}:{dataset}",
                outcome="failed",
                wall_seconds=time.perf_counter() - started,  # repro: allow(DET001) wall-time metadata, excluded from byte-identity
                backend="scaleout",
                dataset=dataset,
            )
            raise
        record_run(
            "scaleout",
            f"{self.report_name}:{dataset}",
            outcome="ok",
            wall_seconds=time.perf_counter() - started,  # repro: allow(DET001) wall-time metadata, excluded from byte-identity
            backend="scaleout",
            dataset=dataset,
            metrics={
                "chips": num_chips,
                "system_cycles": result.system_cycles,
                "interchip_bytes": result.interchip_bytes,
                "scaling_efficiency": result.scaling_efficiency,
            },
        )
        return result

    def run_all(
        self, progress: Callable[[ScaleOutResult], None] | None = None
    ) -> list[ScaleOutResult]:
        """Simulate every dataset of the configuration, in order."""
        results = []
        for dataset in self.config.datasets:
            result = self.run(dataset)
            results.append(result)
            if progress:
                progress(result)
        return results

    # -- reporting ---------------------------------------------------------

    @property
    def report_name(self) -> str:
        """Report/file identifier, e.g. ``scaleout_ring4``."""
        return f"scaleout_{_KIND_TAGS[self.topology.kind]}{self.topology.num_chips}"

    def report(self, results: Sequence[ScaleOutResult]) -> ExperimentResult:
        """Render system results as a suite-compatible experiment result."""
        result = ExperimentResult(
            name=self.report_name,
            paper_reference="Scale-out projection (extends Figure 24 beyond one chip)",
            description=(
                f"{self.topology.num_chips}-chip {self.topology.kind} system: "
                f"system cycles, inter-chip traffic and strong-scaling efficiency"
            ),
            columns=[
                "dataset",
                "chips",
                "topology",
                "system_cycles",
                "speedup",
                "efficiency",
                "interchip_mb",
                "comm_cycles",
                "dram_mb",
                "energy_uj",
            ],
            notes=[
                f"link {self.topology.link_bandwidth_gbps:g} GB/s, "
                f"{self.topology.link_latency_cycles} cycles/hop; "
                f"exchange pattern {self.exchange!r}; shard method {self.shard_method!r}. "
                "Speedup is single-chip cycles over system cycles; efficiency divides "
                "it by the chip count.",
            ],
            metadata={
                "topology": self.topology.fingerprint(),
                "exchange": self.exchange,
                "shard_method": self.shard_method,
                "grow_overrides": dict(self.grow_overrides),
                # comparable_dict: report artefacts must be identical across
                # serial, parallel and cached re-runs, so the ran-vs-cached
                # provenance stays out of them.
                "systems": [r.comparable_dict() for r in results],
            },
        )
        for system in results:
            result.add_row(**system.as_row())
        return result

    def write_reports(self, results: Sequence[ScaleOutResult]) -> list[Path]:
        """Write ``scaleout_*.{json,md}`` next to the suite's artefacts."""
        if self.results_dir is None:
            raise ValueError("ScaleOutSimulator has no results_dir to write into")
        self.results_dir.mkdir(parents=True, exist_ok=True)
        report = self.report(results)
        json_path = self.results_dir / f"{report.name}.json"
        md_path = self.results_dir / f"{report.name}.md"
        json_path.write_text(report.to_json() + "\n")
        md_path.write_text(report.to_markdown() + "\n")
        return [json_path, md_path]


def simulate_scaleout(
    dataset: str,
    num_chips: int,
    config: ExperimentConfig | None = None,
    **kwargs,
) -> ScaleOutResult:
    """Convenience wrapper: build a :class:`ScaleOutSimulator` and run one
    dataset on an ``num_chips``-chip system."""
    simulator = ScaleOutSimulator(
        config=config, topology=ChipTopology(num_chips), **kwargs
    )
    return simulator.run(dataset)
