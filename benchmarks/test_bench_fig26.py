"""Benchmark regenerating Figure 26: GROW vs MatRaptor and GAMMA."""

from conftest import run_and_record


def test_fig26_spsp_comparison(benchmark, experiment_config):
    result = run_and_record(benchmark, "fig26_spsp_comparison", experiment_config)
    for row in result.rows:
        assert row["gcnax"] == 1.0
        # GROW outperforms both generic sparse-sparse Gustavson designs, and
        # GAMMA (with its fiber cache) outperforms the cache-less MatRaptor.
        assert row["grow"] > row["gamma"]
        assert row["gamma"] > row["matraptor"]
    assert result.metadata["geomean_speedup_vs_matraptor"] > result.metadata[
        "geomean_speedup_vs_gamma"
    ]
