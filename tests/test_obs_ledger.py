"""Tests for the persistent run ledger (``repro.obs.ledger``).

Covers the record schema, the environment/flag resolution, crash
tolerance (torn trailing lines) and the concurrency contract: many
processes appending at once must produce only whole, parseable lines.
The session-integration tests at the bottom pin the byte-identity
contract — recording to the ledger must never change what a run returns.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs import ledger


@pytest.fixture
def live_ledger(tmp_path, monkeypatch):
    """A real, enabled ledger on a tmp path (conftest disables the default)."""
    path = tmp_path / "ledger.jsonl"
    monkeypatch.setenv(ledger.LEDGER_ENV, str(path))
    ledger.enable_ledger()
    yield path
    ledger.enable_ledger()


# ---------------------------------------------------------------------------
# Record construction and validation.
# ---------------------------------------------------------------------------


def test_make_record_carries_the_schema_fields():
    record = ledger.make_record(
        "session",
        "grow:cora",
        outcome="fresh",
        wall_seconds=1.5,
        backend="grow",
        dataset="cora",
        cache_key="abc",
        phases={"grow.run_model": 1.2},
        metrics={"cycles": 10.0},
    )
    assert record["schema"] == ledger.LEDGER_SCHEMA
    assert record["kind"] == "session"
    assert record["name"] == "grow:cora"
    assert record["outcome"] == "fresh"
    assert record["wall_seconds"] == 1.5
    assert record["backend"] == "grow"
    assert record["phases"] == {"grow.run_model": 1.2}
    assert record["pid"] == os.getpid()
    assert record["ts"].endswith("Z")


def test_make_record_rejects_unknown_kinds_and_empty_names():
    with pytest.raises(ValueError, match="kind"):
        ledger.make_record("banana", "x")
    with pytest.raises(ValueError, match="name"):
        ledger.make_record("session", "")


def test_optional_fields_are_omitted_not_nulled():
    record = ledger.make_record("suite", "fig20")
    assert "backend" not in record
    assert "phases" not in record
    assert "metrics" not in record


# ---------------------------------------------------------------------------
# Enable/disable resolution.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("value", ["", "0", "off", "false", "no", "none", "OFF"])
def test_env_disable_values(monkeypatch, value):
    monkeypatch.setenv(ledger.LEDGER_ENV, value)
    ledger.enable_ledger()
    assert ledger.ledger_path() is None
    assert not ledger.ledger_enabled()


def test_env_path_redirects(monkeypatch, tmp_path):
    target = tmp_path / "elsewhere.jsonl"
    monkeypatch.setenv(ledger.LEDGER_ENV, str(target))
    ledger.enable_ledger()
    assert ledger.ledger_path() == target
    assert ledger.ledger_enabled()


def test_disable_flag_beats_env(monkeypatch, tmp_path):
    monkeypatch.setenv(ledger.LEDGER_ENV, str(tmp_path / "l.jsonl"))
    ledger.disable_ledger()
    try:
        assert ledger.ledger_path() is None
        assert not ledger.ledger_enabled()
    finally:
        ledger.enable_ledger()


def test_default_requires_benchmarks_dir(monkeypatch, tmp_path):
    monkeypatch.delenv(ledger.LEDGER_ENV, raising=False)
    ledger.enable_ledger()
    monkeypatch.chdir(tmp_path)
    assert ledger.ledger_path() is None  # no benchmarks/ directory here
    (tmp_path / "benchmarks").mkdir()
    assert ledger.ledger_path() == ledger.DEFAULT_LEDGER_PATH


# ---------------------------------------------------------------------------
# Append/load round-trip and crash tolerance (satellite: durability).
# ---------------------------------------------------------------------------


def test_append_load_round_trip(live_ledger):
    book = ledger.RunLedger(live_ledger)
    for index in range(3):
        book.append(ledger.make_record("bench", f"rung-{index}", wall_seconds=index))
    records, bad = ledger.load_ledger(live_ledger)
    assert bad == []
    assert [record["name"] for record in records] == ["rung-0", "rung-1", "rung-2"]


def test_record_run_is_a_one_liner(live_ledger):
    assert ledger.record_run("scaleout", "mesh:cora", outcome="ok", wall_seconds=2.0)
    records, _ = ledger.load_ledger(live_ledger)
    assert records[0]["kind"] == "scaleout"


def test_record_run_swallows_write_failures(monkeypatch, tmp_path):
    # Pointing the ledger at a path whose parent is a *file* makes the
    # open fail; the run must carry on regardless.
    blocker = tmp_path / "blocker"
    blocker.write_text("not a directory")
    monkeypatch.setenv(ledger.LEDGER_ENV, str(blocker / "ledger.jsonl"))
    ledger.enable_ledger()
    assert not ledger.record_run("session", "grow:cora")


def test_record_run_noop_when_disabled(monkeypatch, tmp_path):
    monkeypatch.setenv(ledger.LEDGER_ENV, "0")
    ledger.enable_ledger()
    assert not ledger.record_run("session", "grow:cora")


def test_corrupt_trailing_line_is_skipped_and_reported(live_ledger):
    book = ledger.RunLedger(live_ledger)
    book.append(ledger.make_record("session", "grow:cora"))
    book.append(ledger.make_record("session", "grow:citeseer"))
    # Simulate a crash mid-write: truncate the file inside the last line.
    raw = live_ledger.read_bytes()
    live_ledger.write_bytes(raw[: len(raw) - 20])
    records, bad = ledger.load_ledger(live_ledger)
    assert [record["name"] for record in records] == ["grow:cora"]
    assert len(bad) == 1 and bad[0]["line"] == 2 and bad[0]["error"]


def test_append_after_torn_line_starts_clean(live_ledger):
    book = ledger.RunLedger(live_ledger)
    book.append(ledger.make_record("session", "grow:cora"))
    # A crashed writer left a partial line with no trailing newline.
    with live_ledger.open("ab") as handle:
        handle.write(b'{"torn": tru')
    book.append(ledger.make_record("session", "grow:pubmed"))
    records, bad = ledger.load_ledger(live_ledger)
    assert [record["name"] for record in records] == ["grow:cora", "grow:pubmed"]
    assert len(bad) == 1  # only the torn fragment is lost


def test_load_missing_ledger_is_empty(tmp_path):
    records, bad = ledger.load_ledger(tmp_path / "absent.jsonl")
    assert records == [] and bad == []


def _hammer(path: str, worker: int, lines: int) -> None:
    from repro.obs import ledger as mod

    book = mod.RunLedger(Path(path))
    for index in range(lines):
        book.append(
            mod.make_record(
                "session",
                f"worker-{worker}-line-{index}",
                metrics={"padding": "x" * 200},
            )
        )


def test_concurrent_appends_never_interleave(live_ledger):
    # Satellite (c): many processes hammering one ledger must yield only
    # whole lines — os.write on an O_APPEND descriptor is atomic.
    workers, lines = 4, 25
    context = multiprocessing.get_context("spawn")
    processes = [
        context.Process(target=_hammer, args=(str(live_ledger), worker, lines))
        for worker in range(workers)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=120)
        assert process.exitcode == 0
    # Every line parses — a torn or interleaved write would break JSON.
    raw_lines = live_ledger.read_text().splitlines()
    assert len(raw_lines) == workers * lines
    names = {json.loads(line)["name"] for line in raw_lines}
    assert len(names) == workers * lines
    records, bad = ledger.load_ledger(live_ledger)
    assert bad == [] and len(records) == workers * lines


# ---------------------------------------------------------------------------
# Queries.
# ---------------------------------------------------------------------------


def _records():
    return [
        ledger.make_record("session", "grow:cora", outcome="fresh", wall_seconds=2.0,
                           backend="grow", dataset="cora",
                           phases={"grow.run_model": 1.5, "workload.load_dataset": 0.4}),
        ledger.make_record("session", "grow:cora", outcome="memo", backend="grow",
                           dataset="cora"),
        ledger.make_record("session", "gcnax:cora", outcome="disk", backend="gcnax",
                           dataset="cora"),
        ledger.make_record("suite", "fig20", outcome="ran", wall_seconds=5.0),
        ledger.make_record("bench", "grow-10k", outcome="ok", wall_seconds=0.5,
                           phases={"grow.run_model": 0.3}),
    ]


def test_filter_records_by_each_axis():
    records = _records()
    assert len(ledger.filter_records(records, kind="session")) == 3
    assert len(ledger.filter_records(records, backend="grow")) == 2
    assert len(ledger.filter_records(records, dataset="cora")) == 3
    assert len(ledger.filter_records(records, outcome="fresh")) == 1
    assert len(ledger.filter_records(records, since="1970")) == 5
    assert len(ledger.filter_records(records, since="2999")) == 0


def test_summarize_records_counts_and_hit_rate():
    summary = ledger.summarize_records(_records())
    assert summary["total"] == 5
    assert summary["by_kind"]["session"]["runs"] == 3
    cache = summary["cache"]
    assert cache["fresh"] == 1 and cache["memo"] == 1 and cache["disk"] == 1
    assert cache["hit_rate"] == pytest.approx(2 / 3)
    phases = {row["phase"]: row for row in summary["slowest_phases"]}
    assert phases["grow.run_model"]["count"] == 2
    assert phases["grow.run_model"]["total_seconds"] == pytest.approx(1.8)
    assert summary["slowest_runs"][0]["name"] == "fig20"


def test_summarize_empty_is_well_formed():
    summary = ledger.summarize_records([])
    assert summary["total"] == 0
    assert summary["cache"]["hit_rate"] is None
    assert summary["slowest_phases"] == []


# ---------------------------------------------------------------------------
# Session integration: outcomes recorded, byte-identity untouched.
# ---------------------------------------------------------------------------


def _session_requests():
    from repro.api import SimRequest
    from repro.harness import smoke_config

    config = smoke_config()
    return [
        SimRequest.from_experiment(config, dataset, backend="grow")
        for dataset in list(config.datasets)[:2]
    ]


def test_session_records_fresh_memo_and_disk(live_ledger):
    from repro.api import Session, clear_memo

    clear_memo()
    requests = _session_requests()
    session = Session(use_cache=False, jobs=1)
    session.run(requests[0])
    session.run(requests[0])  # memo hit
    records, bad = ledger.load_ledger(live_ledger)
    assert bad == []
    outcomes = [record["outcome"] for record in records]
    assert outcomes == ["fresh", "memo"]
    fresh = records[0]
    assert fresh["kind"] == "session"
    assert fresh["backend"] == "grow"
    assert fresh["cache_key"]
    assert fresh["wall_seconds"] > 0
    assert fresh["phases"] and "session.execute" in fresh["phases"]


def test_parallel_batch_records_via_side_channel(live_ledger):
    from repro.api import Session, clear_memo

    clear_memo()
    requests = _session_requests()
    Session(use_cache=False, jobs=2).run_batch(requests)
    records, bad = ledger.load_ledger(live_ledger)
    assert bad == []
    fresh = [r for r in records if r["outcome"] == "fresh"]
    assert len(fresh) == len(requests)
    # Worker phases travelled the telemetry side channel to the parent.
    assert all(record["phases"] for record in fresh)


def test_ledger_does_not_change_result_bytes(live_ledger):
    from repro.api import Session, clear_memo

    requests = _session_requests()

    def payloads(jobs):
        clear_memo()
        out = []
        for result in Session(use_cache=False, jobs=jobs).run_batch(requests):
            payload = result.to_dict()
            payload.pop("seconds")  # wall-clock is the one field allowed to move
            out.append(json.dumps(payload, sort_keys=True))
        return out

    with_ledger_serial = payloads(1)
    with_ledger_parallel = payloads(2)
    ledger.disable_ledger()
    try:
        without_ledger = payloads(2)
    finally:
        ledger.enable_ledger()
    assert with_ledger_serial == with_ledger_parallel == without_ledger
