"""Unit tests for the synthetic dataset stand-ins (Table I)."""

import numpy as np
import pytest

from repro.graph.datasets import (
    DATASET_NAMES,
    LARGE_DATASETS,
    SMALL_DATASETS,
    dataset_spec,
    load_all_datasets,
    load_dataset,
)


def test_all_eight_datasets_defined():
    assert len(DATASET_NAMES) == 8
    assert set(SMALL_DATASETS) | set(LARGE_DATASETS) == set(DATASET_NAMES)


def test_spec_lookup_case_insensitive():
    assert dataset_spec("Cora").name == "cora"
    assert dataset_spec("AMAZON").name == "amazon"


def test_spec_lookup_unknown():
    with pytest.raises(KeyError):
        dataset_spec("imaginary")


def test_spec_published_values_match_paper():
    cora = dataset_spec("cora")
    assert cora.num_nodes == 2708
    assert cora.num_edges == 13264
    assert cora.feature_lengths == (1433, 16, 7)
    amazon = dataset_spec("amazon")
    assert amazon.num_nodes == 2449029
    assert amazon.feature_lengths == (100, 64, 47)


def test_spec_derived_statistics():
    reddit = dataset_spec("reddit")
    assert reddit.average_degree == pytest.approx(114848857 / 232965)
    assert 0 < reddit.adjacency_density < 1
    assert reddit.synthetic_density == pytest.approx(
        reddit.synthetic_degree / reddit.synthetic_nodes
    )


def test_load_dataset_default_size():
    dataset = load_dataset("citeseer")
    assert dataset.num_nodes == dataset_spec("citeseer").synthetic_nodes
    assert dataset.name == "citeseer"


def test_load_dataset_override_size():
    dataset = load_dataset("pubmed", num_nodes=300)
    assert dataset.num_nodes == 300
    # Degree scales down with the node count so density is preserved.
    assert dataset.graph.average_degree < dataset_spec("pubmed").synthetic_degree


def test_load_dataset_reproducible():
    a = load_dataset("cora", num_nodes=200, seed=5)
    b = load_dataset("cora", num_nodes=200, seed=5)
    np.testing.assert_array_equal(a.graph.src, b.graph.src)


def test_load_dataset_seed_changes_graph():
    a = load_dataset("cora", num_nodes=200, seed=5)
    b = load_dataset("cora", num_nodes=200, seed=6)
    assert not np.array_equal(a.graph.src, b.graph.src)


def test_feature_lengths_capped(small_dataset):
    assert small_dataset.feature_lengths[0] <= 128
    # Hidden and output widths are never shrunk.
    assert small_dataset.feature_lengths[1:] == dataset_spec("cora").feature_lengths[1:]


def test_layer_dims_and_density(small_dataset):
    in_width, out_width = small_dataset.layer_dims(0)
    assert (in_width, out_width) == small_dataset.feature_lengths[:2]
    assert small_dataset.feature_density(0) == dataset_spec("cora").density_x0
    assert small_dataset.feature_density(1) == dataset_spec("cora").density_x1
    with pytest.raises(IndexError):
        small_dataset.layer_dims(5)


def test_num_layers(small_dataset):
    assert small_dataset.num_layers == 2


def test_reddit_is_densest_synthetic():
    densities = {
        name: dataset_spec(name).synthetic_density for name in DATASET_NAMES
    }
    assert max(densities, key=densities.get) == "reddit"


def test_large_graphs_are_sparser_than_small():
    amazon = dataset_spec("amazon").synthetic_density
    cora = dataset_spec("cora").synthetic_density
    assert amazon < cora


def test_load_all_datasets_small_override():
    overrides = {name: 64 for name in DATASET_NAMES}
    datasets = load_all_datasets(num_nodes=overrides)
    assert list(datasets) == list(DATASET_NAMES)
    assert all(ds.num_nodes == 64 for ds in datasets.values())
