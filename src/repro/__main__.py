"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``                       — list the registered experiments.
* ``datasets``                   — print the synthetic dataset inventory
  (Table I, plus any scenario registered with ``--define``).
* ``run <experiment> [...]``     — run experiments and print their tables
  (``--json`` for machine-readable output).
* ``sim``                        — run one simulation request through the
  unified API facade (``repro.api``): any backend, any registered dataset
  or ``--scenario``-defined synthetic workload, optional config overrides
  and scale-out fabric; ``--json`` emits the canonical ``RunResult``
  payload.
* ``suite``                      — run many experiments in parallel with
  on-disk result caching and JSON/Markdown reports (the workhorse command).
* ``dse``                        — design-space exploration: search a named
  parameter space for the Pareto frontier (cycles vs area by default).
* ``scaleout``                   — simulate a multi-chip GROW system:
  partition-aware sharding, inter-chip traffic, scaling efficiency
  (``--json`` emits canonical ``RunResult`` payloads).
* ``report``                     — render previously computed suite/DSE/
  scale-out results without recomputing anything.
* ``bench``                      — run the fixed benchmark ladder and
  append the measurements as ``benchmarks/BENCH_<n>.json`` (the
  repository's performance trajectory), failing on wall-clock
  regressions beyond the allowed factor.
* ``check``                      — run the static-analysis invariant
  checker (``repro.analyze``) over the source tree: layering,
  determinism, cache-identity, pool-safety, exception-hygiene,
  worker-purity and vectorization-contract rules, the latter two
  whole-program over the pool call graph (``--json``, ``--sarif``,
  ``--changed``, ``--rules``, baseline support; exits 1 on new
  findings, 2 on parse/usage errors).
* ``trace <file>``               — summarise a trace written by ``--trace``:
  top spans, phase breakdown, cache hit rates.
* ``stats``                      — query the persistent run ledger
  (``benchmarks/ledger.jsonl``): runs by kind/backend/dataset/outcome,
  cache hit rates, slowest phases and runs.
* ``dash <out.html>``            — generate the self-contained HTML
  performance dashboard (benchmark trajectory with noise-aware trend
  classification, phase breakdowns, ledger analytics).

The ``sim``, ``run``, ``suite``, ``dse``, ``scaleout`` and ``bench`` verbs
share three telemetry flags: ``--trace FILE`` records every pipeline span
(including pool workers') into a Chrome trace-event JSON viewable in
Perfetto, ``--log-level LEVEL`` turns on the structured JSON logging
of the ``repro.*`` logger hierarchy, and ``--no-ledger`` skips the run
ledger (also disabled by ``REPRO_LEDGER=0``, redirected by
``REPRO_LEDGER=path``).

Examples::

    python -m repro list --verbose
    python -m repro run fig20_speedup --datasets cora citeseer
    python -m repro run fig20_speedup --json       # ExperimentResult dicts
    python -m repro sim --backend grow --datasets cora --override runahead_degree=32
    python -m repro sim --backend gcnax --smoke --json
    python -m repro datasets --define scenario.json
    python -m repro sim --scenario '{"name": "social100k", "generator": "chung-lu",
                                     "num_nodes": 100000, "average_degree": 12}'
    python -m repro sim --backend scaleout --chips 4 --topology mesh --smoke
    python -m repro suite --jobs 8                 # full figure suite, parallel
    python -m repro suite --jobs 8                 # second run: all cache hits
    python -m repro suite --smoke --jobs 2         # CI smoke target
    python -m repro dse --smoke --seed 7 --jobs 2  # seconds-scale frontier search
    python -m repro dse --space grow-sizing --sampler evolutionary --budget 48
    python -m repro scaleout --chips 4 --smoke     # 4-chip ring, smoke datasets
    python -m repro scaleout --chips 16 --topology mesh --link-bandwidth 64
    python -m repro report fig20_speedup
    python -m repro report dse_grow-smoke
    python -m repro bench                          # default ladder -> BENCH_<n>.json
    python -m repro bench --rungs grow-10k --repeats 3   # CI smoke rung
    python -m repro suite --smoke --trace suite.trace.json
    python -m repro trace suite.trace.json         # phase/cache summary
    python -m repro stats                          # ledger: runs, hit rates
    python -m repro stats --kind session --outcome fresh --slowest 5
    python -m repro dash dashboard.html            # self-contained HTML
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GROW (HPCA 2023) reproduction: regenerate the paper's tables and figures.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list registered experiments")
    list_parser.add_argument(
        "--verbose", action="store_true", help="include a one-line summary per experiment"
    )

    datasets_parser = subparsers.add_parser(
        "datasets", help="print the synthetic dataset inventory"
    )
    datasets_parser.add_argument(
        "--define",
        action="append",
        default=None,
        metavar="SPEC",
        help="register a scenario dataset before printing: a path to a JSON "
        "scenario spec or an inline JSON object (repeatable); see "
        "repro.graph.registry for the spec schema",
    )

    run_parser = subparsers.add_parser("run", help="run experiments and print their tables")
    run_parser.add_argument("experiments", nargs="+", help="experiment ids (see 'list')")
    _add_config_arguments(run_parser)
    _add_telemetry_arguments(run_parser)
    run_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the experiment results as JSON instead of tables",
    )

    sim_parser = subparsers.add_parser(
        "sim",
        help="run one simulation through the unified API facade (repro.api)",
    )
    sim_parser.add_argument(
        "--backend",
        default="grow",
        help="registered backend (grow, multipe, gcnax, hygcn, matraptor, gamma, scaleout)",
    )
    _add_config_arguments(sim_parser)
    sim_parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced-size CI configuration (two shrunken datasets)",
    )
    sim_parser.add_argument(
        "--override",
        action="append",
        default=None,
        metavar="KEY=VALUE",
        help="simulator-config override (repeatable), e.g. runahead_degree=32",
    )
    sim_parser.add_argument(
        "--no-partition",
        action="store_true",
        help="use the unpartitioned preprocessing plan (GROW backends)",
    )
    sim_parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes (0 = one per CPU; default 1)"
    )
    sim_parser.add_argument(
        "--results-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="enable the on-disk result cache under DIR/cache (shared with the suite)",
    )
    sim_parser.add_argument(
        "--force", action="store_true", help="recompute even when a cached run exists"
    )
    sim_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the canonical RunResult payloads as JSON instead of a table",
    )
    _add_fabric_arguments(sim_parser, default_chips=1)
    _add_telemetry_arguments(sim_parser)

    suite_parser = subparsers.add_parser(
        "suite",
        help="run experiments in parallel with result caching and reports",
    )
    suite_parser.add_argument(
        "experiments", nargs="*", help="experiment ids (default: every registered experiment)"
    )
    _add_config_arguments(suite_parser)
    suite_parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes (0 = one per CPU; default 1)"
    )
    suite_parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced-size CI configuration (two shrunken datasets)",
    )
    suite_parser.add_argument(
        "--results-dir",
        type=Path,
        default=None,
        help="report/cache directory (default benchmarks/results)",
    )
    suite_parser.add_argument(
        "--no-cache", action="store_true", help="disable the on-disk result cache"
    )
    suite_parser.add_argument(
        "--force", action="store_true", help="recompute even when a cached result exists"
    )
    _add_telemetry_arguments(suite_parser)

    dse_parser = subparsers.add_parser(
        "dse",
        help="multi-objective design-space search with Pareto-frontier reports",
    )
    dse_parser.add_argument(
        "--space",
        default=None,
        help="registered parameter space (default grow-sizing, or grow-smoke with --smoke; "
        "see --list-spaces)",
    )
    dse_parser.add_argument(
        "--sampler",
        choices=("grid", "random", "evolutionary"),
        default="evolutionary",
        help="candidate sampler (default evolutionary)",
    )
    dse_parser.add_argument(
        "--budget", type=int, default=32, help="maximum candidate evaluations (default 32)"
    )
    dse_parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes (0 = one per CPU; default 1)"
    )
    dse_parser.add_argument(
        "--seed", type=int, default=0, help="sampler seed; same seed, same candidate stream"
    )
    dse_parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced-size CI configuration (two shrunken datasets, tiny default space)",
    )
    dse_parser.add_argument(
        "--area-budget",
        type=float,
        default=None,
        metavar="MM2",
        help="feasibility constraint: 65 nm area must not exceed this many mm^2",
    )
    dse_parser.add_argument(
        "--results-dir",
        type=Path,
        default=None,
        help="report/cache directory shared with the suite (default benchmarks/results)",
    )
    dse_parser.add_argument(
        "--no-cache", action="store_true", help="disable the on-disk evaluation cache"
    )
    dse_parser.add_argument(
        "--force", action="store_true", help="recompute even when a cached evaluation exists"
    )
    dse_parser.add_argument(
        "--list-spaces", action="store_true", help="list the registered spaces and exit"
    )
    _add_config_arguments(dse_parser)
    _add_telemetry_arguments(dse_parser)

    scaleout_parser = subparsers.add_parser(
        "scaleout",
        help="simulate a multi-chip GROW system (sharding + interconnect)",
    )
    _add_fabric_arguments(scaleout_parser, default_chips=4)
    scaleout_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the canonical RunResult payloads as JSON instead of tables",
    )
    scaleout_parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes per dataset (0 = one per CPU)"
    )
    scaleout_parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced-size CI configuration (two shrunken datasets)",
    )
    scaleout_parser.add_argument(
        "--results-dir",
        type=Path,
        default=None,
        help="report/cache directory shared with the suite (default benchmarks/results)",
    )
    scaleout_parser.add_argument(
        "--no-cache", action="store_true", help="disable the on-disk per-chip cache"
    )
    scaleout_parser.add_argument(
        "--force", action="store_true", help="recompute even when a cached chip run exists"
    )
    _add_config_arguments(scaleout_parser)
    _add_telemetry_arguments(scaleout_parser)

    subparsers.add_parser(
        "bench",
        help="run the benchmark ladder and append BENCH_<n>.json",
        add_help=False,
    )

    subparsers.add_parser(
        "check",
        help="run the static-analysis invariant checker (layering, "
        "determinism, cache identity, pools, exception hygiene, "
        "worker purity, vectorization contract)",
        add_help=False,
    )

    trace_parser = subparsers.add_parser(
        "trace",
        help="summarise a trace file written by --trace (spans, phases, caches)",
    )
    trace_parser.add_argument("file", type=Path, help="trace JSON written by --trace")
    trace_parser.add_argument(
        "--top",
        type=int,
        default=15,
        metavar="N",
        help="how many spans to show in the top-spans table (default 15)",
    )

    stats_parser = subparsers.add_parser(
        "stats",
        help="query the persistent run ledger: runs, hit rates, slowest phases",
    )
    stats_parser.add_argument(
        "--ledger",
        type=Path,
        default=None,
        metavar="FILE",
        help="ledger JSONL to read (default: the active ledger, "
        "benchmarks/ledger.jsonl or $REPRO_LEDGER)",
    )
    stats_parser.add_argument(
        "--kind",
        choices=("session", "suite", "dse", "scaleout", "bench"),
        default=None,
        help="restrict to one record kind",
    )
    stats_parser.add_argument(
        "--backend", default=None, help="restrict to one backend (e.g. grow)"
    )
    stats_parser.add_argument(
        "--dataset", default=None, help="restrict to one dataset"
    )
    stats_parser.add_argument(
        "--outcome",
        default=None,
        help="restrict to one outcome (fresh, memo, disk, dedup, ok, failed, ...)",
    )
    stats_parser.add_argument(
        "--since",
        default=None,
        metavar="ISO",
        help="only records at or after this UTC instant (ISO prefix, "
        "e.g. 2026-08-01 or 2026-08-01T12:00)",
    )
    stats_parser.add_argument(
        "--last",
        type=int,
        default=0,
        metavar="N",
        help="also print the N most recent matching records",
    )
    stats_parser.add_argument(
        "--slowest",
        type=int,
        default=10,
        metavar="N",
        help="rows in the slowest-phases/slowest-runs tables (default 10)",
    )
    stats_parser.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )

    dash_parser = subparsers.add_parser(
        "dash",
        help="generate the self-contained HTML performance dashboard",
    )
    dash_parser.add_argument(
        "output", type=Path, help="path of the HTML file to write"
    )
    dash_parser.add_argument(
        "--bench-dir",
        type=Path,
        default=None,
        help="directory of the BENCH_<n>.json trajectory (default benchmarks)",
    )
    dash_parser.add_argument(
        "--ledger",
        type=Path,
        default=None,
        metavar="FILE",
        help="ledger JSONL to include (default: the active ledger)",
    )
    dash_parser.add_argument(
        "--markdown",
        type=Path,
        default=None,
        metavar="FILE",
        help="also write a Markdown twin of the dashboard to FILE",
    )
    dash_parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        metavar="FRACTION",
        help="trend tolerance band, e.g. 0.25 = ±25%% (default from repro.obs.trend)",
    )
    dash_parser.add_argument(
        "--window",
        type=int,
        default=None,
        metavar="N",
        help="baseline window in documents (default from repro.obs.trend)",
    )

    report_parser = subparsers.add_parser(
        "report", help="render previously computed suite, DSE or scale-out results"
    )
    report_parser.add_argument(
        "experiments", nargs="*", help="experiment ids (default: everything in the results dir)"
    )
    report_parser.add_argument(
        "--results-dir",
        type=Path,
        default=None,
        help="directory holding <experiment>.json files (default benchmarks/results)",
    )
    report_parser.add_argument(
        "--format",
        choices=("markdown", "table"),
        default="markdown",
        help="output rendering (default markdown)",
    )
    return parser


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--datasets", nargs="*", default=None, help="restrict to these datasets"
    )
    parser.add_argument(
        "--bandwidth", type=float, default=None, help="override DRAM bandwidth in GB/s"
    )
    parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="SPEC",
        help="define and run a synthetic scenario dataset: a path to a JSON "
        "scenario spec or an inline JSON object (repeatable).  Without "
        "--datasets, only the scenario(s) run; with it, they join the list",
    )


def _add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared telemetry flags (also offered by the bench verb's parser)."""
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="FILE",
        help="record pipeline spans into FILE as Chrome trace-event JSON "
        "(open in Perfetto, or summarise with 'python -m repro trace FILE')",
    )
    parser.add_argument(
        "--log-level",
        default=None,
        metavar="LEVEL",
        help="enable structured JSON logging of the repro.* hierarchy at "
        "LEVEL (debug, info, warning, error)",
    )
    parser.add_argument(
        "--no-ledger",
        action="store_true",
        help="do not append this run to the persistent run ledger "
        "(benchmarks/ledger.jsonl; see also REPRO_LEDGER)",
    )


def _add_fabric_arguments(parser: argparse.ArgumentParser, default_chips: int) -> None:
    """The scale-out fabric flags, shared by the scaleout and sim verbs.

    Defaults (except the chip count) come from :class:`repro.api.ScaleOutSpec`
    so the CLI, the request layer and the engine can never drift apart.
    """
    from repro.api import ScaleOutSpec
    from repro.api.request import EXCHANGE_PATTERNS, SHARD_METHODS, TOPOLOGY_KINDS

    spec = ScaleOutSpec()
    parser.add_argument(
        "--chips",
        type=int,
        default=default_chips,
        help=f"number of chips (default {default_chips})",
    )
    parser.add_argument(
        "--topology",
        choices=TOPOLOGY_KINDS,
        default=spec.topology,
        help=f"inter-chip fabric (default {spec.topology})",
    )
    parser.add_argument(
        "--link-bandwidth",
        type=float,
        default=spec.link_bandwidth_gbps,
        metavar="GBPS",
        help=f"bandwidth of one inter-chip link in GB/s (default {spec.link_bandwidth_gbps:g})",
    )
    parser.add_argument(
        "--link-latency",
        type=int,
        default=spec.link_latency_cycles,
        metavar="CYCLES",
        help=f"per-hop latency in cycles (default {spec.link_latency_cycles})",
    )
    parser.add_argument(
        "--exchange",
        choices=EXCHANGE_PATTERNS,
        default=spec.exchange,
        help=f"inter-chip exchange pattern (default {spec.exchange})",
    )
    parser.add_argument(
        "--shard-method",
        choices=SHARD_METHODS,
        default=spec.shard_method,
        help=f"cluster-to-chip assignment (default {spec.shard_method})",
    )


def _fabric_from_args(args):
    """Build a validated ScaleOutSpec from the shared fabric flags."""
    from repro.api import RequestError, ScaleOutSpec

    try:
        return ScaleOutSpec(
            num_chips=args.chips,
            topology=args.topology,
            link_bandwidth_gbps=args.link_bandwidth,
            link_latency_cycles=args.link_latency,
            exchange=args.exchange,
            shard_method=args.shard_method,
        )
    except RequestError as error:
        raise SystemExit(str(error)) from error


def _validate_experiments(names) -> None:
    from repro.harness.registry import validate_experiment_names

    import repro.harness  # noqa: F401  (populates the registry)

    validate_experiment_names(names)


def _parse_scenario_arguments(values) -> list:
    """Parse repeated ``--scenario``/``--define`` flags and register the specs.

    Each value is either a path to a JSON scenario-spec file or an inline
    JSON object (``'{"name": "social100k", "num_nodes": 100000, ...}'``).
    Every parsed spec is registered with the runtime registry (re-defining a
    previously registered scenario is allowed; shadowing a built-in is not).
    """
    from repro.graph import registry

    specs = []
    for value in values or ():
        text = value
        if not value.lstrip().startswith("{"):
            path = Path(value)
            if not path.is_file():
                raise SystemExit(
                    f"--scenario expects a JSON file path or an inline JSON "
                    f"object, and {value!r} is neither"
                )
            text = path.read_text()
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise SystemExit(f"scenario spec {value!r} is not valid JSON: {error}")
        if not isinstance(data, dict):
            raise SystemExit(f"scenario spec {value!r} must be a JSON object")
        try:
            spec = registry.scenario_from_dict(data)
        except ValueError as error:
            raise SystemExit(str(error))
        if registry.is_builtin(spec.name):
            raise SystemExit(
                f"scenario {spec.name!r} cannot redefine a built-in dataset"
            )
        registry.register_dataset(spec, replace=True)
        specs.append(spec)
    return specs


def _config_from_args(args):
    from repro.api.errors import unknown_name_message
    from repro.graph import registry
    from repro.harness import default_config, smoke_config

    scenarios = _parse_scenario_arguments(getattr(args, "scenario", None))
    names = [name.lower() for name in (args.datasets or ())]
    known = registry.dataset_names()
    unknown = [name for name in names if name not in known]
    if unknown:
        lines = [unknown_name_message("dataset", name, known) for name in unknown]
        lines.append("(note: experiment ids go before --datasets)")
        raise SystemExit("\n".join(lines))
    scenario_names = [spec.name for spec in scenarios]
    if names:
        names += [name for name in scenario_names if name not in names]
    elif scenario_names:
        names = scenario_names

    overrides = {}
    if args.bandwidth is not None:
        overrides["bandwidth_gbps"] = args.bandwidth
    build = smoke_config if getattr(args, "smoke", False) else default_config
    # Every non-builtin name is registered by now, so the config's
    # construction-time snapshot carries each scenario's full definition
    # into suite/DSE/scale-out worker processes.
    return build(datasets=tuple(names) if names else None, **overrides)


def _cmd_list(args) -> int:
    from repro.harness import experiment_summary, list_experiments

    for name in list_experiments():
        if args.verbose:
            print(f"{name:28s} {experiment_summary(name)}")
        else:
            print(name)
    return 0


def _cmd_datasets(args) -> int:
    from repro.harness import default_config, run_experiment

    scenarios = _parse_scenario_arguments(args.define)
    config = default_config()
    if scenarios:
        config = config.with_scenarios(*scenarios)
    print(run_experiment("table1_datasets", config=config).to_table())
    return 0


def _cmd_run(args) -> int:
    from repro.harness import run_experiment
    from repro.harness.report import json_default

    _validate_experiments(args.experiments)
    config = _config_from_args(args)
    results = [run_experiment(name, config=config) for name in args.experiments]
    if args.json:
        print(json.dumps([r.to_dict() for r in results], indent=2, default=json_default))
        return 0
    for result in results:
        print(result.to_table())
        print()
    return 0


def _parse_override_arguments(pairs) -> dict:
    """Parse repeated ``--override KEY=VALUE`` flags (values read as JSON,
    falling back to plain strings: ``runahead_degree=32``, ``enable_runahead=true``,
    ``hdn_replacement=lru``)."""
    overrides = {}
    for pair in pairs or ():
        key, separator, raw = pair.partition("=")
        if not separator or not key:
            raise SystemExit(f"--override expects KEY=VALUE, got {pair!r}")
        try:
            value = json.loads(raw)
        except json.JSONDecodeError:
            value = raw
        overrides[key] = value
    return overrides


def _cmd_sim(args) -> int:
    from repro.api import RequestError, ScaleOutSpec, Session, SimRequest
    from repro.harness.report import ExperimentResult, json_default

    config = _config_from_args(args)
    if args.backend == "scaleout":
        fabric = _fabric_from_args(args)
    else:
        fabric = None
        # Refuse rather than silently drop fabric flags on a chipless run.
        # (The sim parser's fabric defaults are ScaleOutSpec's defaults.)
        if _fabric_from_args(args) != ScaleOutSpec():
            raise SystemExit(
                "--chips/--topology/--link-bandwidth/--link-latency/--exchange/"
                f"--shard-method only apply to the 'scaleout' backend, not {args.backend!r}"
            )
    if args.no_partition and args.backend not in ("grow", "multipe"):
        raise SystemExit(
            f"--no-partition only applies to the 'grow'/'multipe' backends "
            f"(the {args.backend!r} backend never selects a preprocessing plan)"
        )
    overrides = _parse_override_arguments(args.override)
    try:
        requests = [
            SimRequest.from_experiment(
                config,
                dataset,
                backend=args.backend,
                overrides=overrides,
                partitioned=not args.no_partition,
                fabric=fabric,
            )
            for dataset in config.datasets
        ]
    except RequestError as error:
        raise SystemExit(str(error)) from error

    session = Session(
        results_dir=args.results_dir,
        use_cache=args.results_dir is not None,
        force=args.force,
        jobs=args.jobs,
    )
    results = session.run_batch(requests)
    if args.json:
        print(json.dumps([r.to_dict() for r in results], indent=2, default=json_default))
        return 0
    table = ExperimentResult(
        name=f"sim_{args.backend}",
        paper_reference="API facade (repro.api)",
        description=f"API facade runs on the {args.backend!r} backend",
        columns=["dataset", "backend", "cycles", "dram_mb", "energy_uj", "area_mm2", "status"],
    )
    for run in results:
        table.add_row(
            dataset=run.request.dataset,
            backend=run.backend,
            cycles=run.total_cycles,
            dram_mb=run.dram_bytes / 1e6,
            energy_uj=run.energy_nj / 1000.0,
            area_mm2=run.area_mm2,
            status=run.status,
        )
    print(table.to_table())
    return 0


def _cmd_suite(args) -> int:
    from repro.harness import SuiteRunner
    from repro.harness.suite import DEFAULT_RESULTS_DIR

    _validate_experiments(args.experiments)
    results_dir = args.results_dir if args.results_dir is not None else DEFAULT_RESULTS_DIR
    runner = SuiteRunner(
        config=_config_from_args(args),
        experiments=args.experiments or None,
        jobs=args.jobs,
        use_cache=not args.no_cache,
        force=args.force,
        results_dir=results_dir,
    )

    def progress(outcome) -> None:
        label = {"ran": "ran   ", "cached": "cached", "failed": "FAILED"}[outcome.status]
        print(f"  {label}  {outcome.name}  ({outcome.seconds:.2f}s)")

    print(
        f"running {len(runner.experiments)} experiments with {runner.jobs} job(s); "
        f"reports -> {results_dir}"
    )
    report = runner.run(progress=progress)
    print(
        f"done in {report.total_seconds:.1f}s: {report.num_ran} ran, "
        f"{report.num_cached} cached, {report.num_failed} failed"
    )
    for outcome in report.outcomes:
        if outcome.error:
            print(f"\n{outcome.name} failed:\n{outcome.error}", file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_dse(args) -> int:
    from repro.dse import DSERunner, default_objectives, get_space, list_spaces
    from repro.dse.engine import DEFAULT_RESULTS_DIR

    if args.list_spaces:
        for name in list_spaces():
            space = get_space(name)
            print(
                f"{name:24s} {space.accelerator:6s} {space.size:5d} candidates  "
                f"{space.description}"
            )
        return 0

    space_name = args.space or ("grow-smoke" if args.smoke else "grow-sizing")
    try:
        space = get_space(space_name)
    except KeyError:
        raise SystemExit(
            f"unknown space {space_name!r}; choose from {list_spaces()} "
            "(see 'python -m repro dse --list-spaces')"
        )
    if args.budget < 1:
        raise SystemExit("--budget must be at least 1")

    results_dir = args.results_dir if args.results_dir is not None else DEFAULT_RESULTS_DIR
    runner = DSERunner(
        space=space,
        sampler=args.sampler,
        config=_config_from_args(args),
        objectives=default_objectives(area_budget_mm2=args.area_budget),
        budget=args.budget,
        jobs=args.jobs,
        seed=args.seed,
        use_cache=not args.no_cache,
        force=args.force,
        results_dir=results_dir,
    )

    print(
        f"searching space '{space.name}' ({space.accelerator}, {space.size} grid candidates) "
        f"with sampler={args.sampler} budget={args.budget} seed={args.seed} "
        f"jobs={runner.jobs}; reports -> {results_dir}"
    )

    def progress(generation, outcomes, frontier_size) -> None:
        ran = sum(1 for e in outcomes if e.status == "ran")
        cached = sum(1 for e in outcomes if e.status == "cached")
        failed = sum(1 for e in outcomes if e.status == "failed")
        infeasible = sum(1 for e in outcomes if e.ok and not e.feasible)
        print(
            f"  generation {generation}: {len(outcomes)} candidates "
            f"({ran} ran, {cached} cached, {failed} failed, {infeasible} infeasible); "
            f"frontier size {frontier_size}"
        )

    report = runner.run(progress=progress)
    print(
        f"done in {report.total_seconds:.1f}s: {len(report.evaluations)} evaluations "
        f"({report.num_ran} ran, {report.num_cached} cached, {report.num_failed} failed), "
        f"{len(report.frontier)} Pareto point(s)"
    )
    for evaluation in report.evaluations:
        if evaluation.error:
            print(f"\ncandidate {evaluation.candidate} failed:\n{evaluation.error}", file=sys.stderr)
    print()
    print(report.frontier_result().to_table())
    # Mirror 'suite': any failed evaluation is a nonzero exit, so the CI
    # smoke target cannot stay green while part of the space errors out.
    return 0 if report.ok else 1


def _cmd_scaleout(args) -> int:
    from repro.harness.suite import DEFAULT_RESULTS_DIR
    from repro.scaleout import ChipTopology, ScaleOutSimulator

    if args.chips < 1:
        raise SystemExit("--chips must be at least 1")
    results_dir = args.results_dir if args.results_dir is not None else DEFAULT_RESULTS_DIR
    try:
        topology = ChipTopology(
            num_chips=args.chips,
            kind=args.topology,
            link_bandwidth_gbps=args.link_bandwidth,
            link_latency_cycles=args.link_latency,
        )
    except ValueError as error:
        raise SystemExit(str(error)) from error
    simulator = ScaleOutSimulator(
        config=_config_from_args(args),
        topology=topology,
        exchange=args.exchange,
        shard_method=args.shard_method,
        jobs=args.jobs,
        use_cache=not args.no_cache,
        force=args.force,
        results_dir=results_dir,
    )

    if not args.json:
        print(
            f"simulating a {args.chips}-chip {args.topology} system "
            f"({args.link_bandwidth:g} GB/s links, {args.link_latency} cycles/hop, "
            f"exchange={args.exchange}) with {simulator.jobs} job(s); "
            f"reports -> {results_dir}"
        )

    def progress(system) -> None:
        cached = sum(1 for s in system.chip_statuses if s == "cached")
        ran = sum(1 for s in system.chip_statuses if s == "ran")
        print(
            f"  {system.dataset}: {system.system_cycles:.3e} cycles, "
            f"{system.interchip_bytes / 1e6:.2f} MB inter-chip, "
            f"efficiency {system.scaling_efficiency:.2f} "
            f"({ran} chip(s) ran, {cached} cached)"
        )

    results = simulator.run_all(progress=None if args.json else progress)
    simulator.write_reports(results)
    if args.json:
        # The canonical API payloads: each system wrapped exactly as the
        # facade's 'scaleout' backend would return it.
        from repro.api import SimRequest, scaleout_run_result
        from repro.harness.report import json_default

        fabric = _fabric_from_args(args)
        payloads = [
            scaleout_run_result(
                SimRequest.from_experiment(
                    simulator.config, system.dataset, backend="scaleout", fabric=fabric
                ),
                system,
            ).to_dict()
            for system in results
        ]
        print(json.dumps(payloads, indent=2, default=json_default))
        return 0
    print()
    print(simulator.report(results).to_table())
    return 0


def _cmd_report(args) -> int:
    from repro.harness import ExperimentResult
    from repro.harness.suite import DEFAULT_RESULTS_DIR

    results_dir = args.results_dir if args.results_dir is not None else DEFAULT_RESULTS_DIR
    hint = "run 'python -m repro suite' (or 'python -m repro dse') first"
    if not results_dir.is_dir():
        print(f"results directory {results_dir} does not exist; {hint}", file=sys.stderr)
        return 1
    if args.experiments:
        paths = [results_dir / f"{name}.json" for name in args.experiments]
        missing = [p for p in paths if not p.exists()]
        if missing:
            print(
                f"no stored results for {[p.stem for p in missing]} in {results_dir}; {hint}",
                file=sys.stderr,
            )
            return 1
    else:
        paths = sorted(
            p for p in results_dir.glob("*.json") if p.name != "suite_report.json"
        )
        if not paths:
            print(f"no stored results in {results_dir}; {hint}", file=sys.stderr)
            return 1
    for path in paths:
        try:
            result = ExperimentResult.from_dict(json.loads(path.read_text()))
        except (json.JSONDecodeError, KeyError, TypeError) as error:
            print(
                f"stored result {path} is unreadable ({error}); "
                "delete it and re-run 'python -m repro suite' or 'python -m repro dse'",
                file=sys.stderr,
            )
            return 1
        print(result.to_markdown() if args.format == "markdown" else result.to_table())
        print()
    return 0


def _cmd_trace(args) -> int:
    from repro.obs import TraceSchemaError, load_trace, summarize_trace

    if args.top < 1:
        raise SystemExit("--top must be at least 1")
    try:
        document = load_trace(args.file)
    except TraceSchemaError as error:
        raise SystemExit(str(error)) from error
    complete = sum(
        1 for event in document.get("traceEvents", []) if event.get("ph") == "X"
    )
    if complete == 0:
        print(
            f"{args.file}: trace contains no complete spans — the traced "
            "process may have died before any span finished, or tracing "
            "was never enabled (run with --trace FILE)",
            file=sys.stderr,
        )
        return 1
    print(summarize_trace(document, top=args.top))
    return 0


def _cmd_stats(args) -> int:
    from repro.obs import ledger as run_ledger
    from repro.obs.summary import format_table

    if args.last < 0:
        raise SystemExit("--last must be non-negative")
    if args.slowest < 1:
        raise SystemExit("--slowest must be at least 1")
    path = args.ledger if args.ledger is not None else run_ledger.ledger_path()
    if path is None:
        print(
            "the run ledger is disabled (REPRO_LEDGER); pass --ledger FILE",
            file=sys.stderr,
        )
        return 1
    path = Path(path)
    if not path.exists():
        print(
            f"no ledger at {path}; run a simulation (repro sim/suite/bench ...) "
            "first, or point --ledger at one",
            file=sys.stderr,
        )
        return 1
    records, bad = run_ledger.load_ledger(path)
    records = run_ledger.filter_records(
        records,
        kind=args.kind,
        backend=args.backend,
        dataset=args.dataset,
        outcome=args.outcome,
        since=args.since,
    )
    summary = run_ledger.summarize_records(records, slowest=args.slowest)
    if args.json:
        payload = dict(summary, ledger=str(path), bad_lines=len(bad))
        if args.last:
            payload["last"] = records[-args.last :]
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    sections = [f"{summary['total']} matching record(s) in {path}"]
    if bad:
        sections[0] += f" ({len(bad)} corrupt line(s) skipped)"
    if summary["by_kind"]:
        rows = [
            [
                kind,
                str(entry["runs"]),
                f"{entry['wall_seconds']:.3f}s",
                ", ".join(
                    f"{name}={count}"
                    for name, count in sorted(entry["outcomes"].items())
                ),
            ]
            for kind, entry in sorted(summary["by_kind"].items())
        ]
        sections.append(
            "Runs by kind\n"
            + format_table(["kind", "runs", "wall total", "outcomes"], rows)
        )
    cache = summary["cache"]
    rate = cache["hit_rate"]
    sections.append(
        "Cache behaviour\n"
        + format_table(
            ["fresh", "memo", "disk", "dedup", "failed", "hit rate"],
            [
                [
                    str(cache["fresh"]),
                    str(cache["memo"]),
                    str(cache["disk"]),
                    str(cache["dedup"]),
                    str(cache["failed"]),
                    "-" if rate is None else f"{rate * 100:.1f}%",
                ]
            ],
        )
    )
    if summary["slowest_phases"]:
        rows = [
            [
                row["phase"],
                str(row["count"]),
                f"{row['total_seconds']:.3f}s",
                f"{row['mean_seconds']:.3f}s",
            ]
            for row in summary["slowest_phases"]
        ]
        sections.append(
            "Slowest phases\n"
            + format_table(["phase", "runs", "total", "mean"], rows)
        )
    if summary["slowest_runs"]:
        rows = [
            [
                row["ts"],
                row["kind"],
                row["name"],
                row["outcome"],
                f"{row['wall_seconds']:.3f}s",
            ]
            for row in summary["slowest_runs"]
        ]
        sections.append(
            "Slowest runs\n"
            + format_table(["when (UTC)", "kind", "name", "outcome", "wall"], rows)
        )
    if args.last:
        rows = [
            [
                str(record.get("ts", "?")),
                str(record.get("kind", "?")),
                str(record.get("name", "?")),
                str(record.get("outcome", "?")),
                f"{record.get('wall_seconds', 0.0):.3f}s",
            ]
            for record in records[-args.last :]
        ]
        sections.append(
            f"Last {len(rows)} record(s)\n"
            + format_table(["when (UTC)", "kind", "name", "outcome", "wall"], rows)
        )
    print("\n\n".join(sections))
    return 0


def _cmd_dash(args) -> int:
    from repro.obs import dashboard, trend

    if args.tolerance is not None and args.tolerance <= 0:
        raise SystemExit("--tolerance must be positive")
    if args.window is not None and args.window < 1:
        raise SystemExit("--window must be at least 1")
    bench_dir = args.bench_dir if args.bench_dir is not None else Path("benchmarks")
    try:
        path = dashboard.write_dashboard(
            args.output,
            bench_dir=bench_dir,
            ledger_path=args.ledger,
            markdown_path=args.markdown,
            tolerance=args.tolerance
            if args.tolerance is not None
            else trend.DEFAULT_TOLERANCE,
            window=args.window if args.window is not None else trend.DEFAULT_WINDOW,
        )
    except OSError as error:
        raise SystemExit(f"cannot write dashboard: {error}") from error
    print(f"wrote {path}")
    if args.markdown is not None:
        print(f"wrote {args.markdown}")
    return 0


def main(argv: list[str] | None = None) -> int:
    raw = sys.argv[1:] if argv is None else list(argv)
    if raw and raw[0] == "bench":
        # The bench verb owns its argument parsing (shared with
        # benchmarks/perf.py), so hand everything after the verb through.
        from repro.bench.runner import main as bench_main

        return bench_main(raw[1:])
    if raw and raw[0] == "check":
        # The check verb owns its argument parsing and must work without
        # the simulation stack's dependencies (repro.analyze is
        # stdlib-only), so delegate before importing anything heavy.
        from repro.analyze.cli import main as check_main

        return check_main(raw[1:])
    args = _build_parser().parse_args(raw)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "datasets":
        return _cmd_datasets(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "dash":
        return _cmd_dash(args)

    # Every remaining verb runs simulations and shares the telemetry flags;
    # the trace file is written even when the verb fails partway, so long
    # runs that die still leave an inspectable timeline behind.
    from repro.obs import cli_telemetry

    finish = cli_telemetry(args.trace, args.log_level, no_ledger=args.no_ledger)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "sim":
            return _cmd_sim(args)
        if args.command == "suite":
            return _cmd_suite(args)
        if args.command == "dse":
            return _cmd_dse(args)
        if args.command == "scaleout":
            return _cmd_scaleout(args)
        raise AssertionError(f"unhandled command {args.command!r}")
    finally:
        trace_path = finish()
        if trace_path is not None:
            print(f"trace written to {trace_path}", file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
