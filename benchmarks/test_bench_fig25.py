"""Benchmarks regenerating Figure 25: runahead-degree and bandwidth sensitivity."""


def test_fig25a_runahead_sweep(suite_report):
    result = suite_report.result("fig25a_runahead_sweep")
    for row in result.rows:
        # More runahead never hurts, and 16-way captures essentially all of the
        # benefit (the paper's chosen design point).
        assert abs(row["way_1"] - 1.0) < 1e-6
        assert row["way_16"] >= row["way_1"] - 1e-9
        assert row["way_32"] <= row["way_16"] * 1.2


def test_fig25b_bandwidth_sweep(suite_report, experiment_config):
    result = suite_report.result("fig25b_bandwidth_sweep")
    by_key = {(row["dataset"], row["design"]): row for row in result.rows}
    steeper = 0
    for name in experiment_config.datasets:
        gcnax = by_key[(name, "gcnax")]
        grow = by_key[(name, "grow")]
        # Throughput rises with bandwidth for both designs.
        assert gcnax["bw_4.0x"] >= gcnax["bw_1.0x"] - 1e-9
        assert grow["bw_4.0x"] >= grow["bw_1.0x"] - 1e-9
        # GCNAX's slope (sensitivity to bandwidth) is at least as steep as
        # GROW's on most datasets.
        gcnax_slope = gcnax["bw_4.0x"] - gcnax["bw_0.25x"]
        grow_slope = grow["bw_4.0x"] - grow["bw_0.25x"]
        if gcnax_slope >= grow_slope - 1e-9:
            steeper += 1
    assert steeper >= len(experiment_config.datasets) * 0.6
