"""Per-rung subprocess entry: ``python -m repro.bench.worker <rung> [repeats]``.

Running each rung in a fresh interpreter keeps the measurements honest:
no warm module caches, no shared run memo, and a peak-RSS figure that
belongs to that rung alone.  The sample record is printed as a single
JSON line on stdout; everything else the rung prints goes to stderr.
"""

from __future__ import annotations

import json
import sys


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv or len(argv) > 2:
        print("usage: python -m repro.bench.worker <rung> [repeats]", file=sys.stderr)
        return 2
    name = argv[0]
    repeats = int(argv[1]) if len(argv) == 2 else 1

    from repro.bench.ladder import run_rung

    # Anything the simulators print must not corrupt the JSON line.
    stdout = sys.stdout
    sys.stdout = sys.stderr
    try:
        sample = run_rung(name, repeats=repeats)
    finally:
        sys.stdout = stdout
    print(json.dumps(sample))
    return 0


if __name__ == "__main__":
    sys.exit(main())
