"""Benchmark regenerating Figure 7: GCNAX's latency breakdown."""


def test_fig7_gcnax_breakdown(suite_report):
    result = suite_report.result("fig7_gcnax_breakdown")
    for row in result.rows:
        total = row["aggregation_fraction"] + row["combination_fraction"]
        assert abs(total - 1.0) < 1e-6
        # Aggregation dominates GCNAX's runtime on every dataset.
        assert row["aggregation_fraction"] > 0.5
