"""LAY: the layer DAG of ``docs/architecture.md``, mechanically enforced.

* ``LAY001`` — a package's module-scope imports must stay inside its
  documented dependency set (``obs`` is importable from everywhere).
  A package missing from the DAG config entirely is itself a finding:
  new layers must be added to ``contracts.LAYER_DEPS`` (and the docs)
  before they may import anything.
* ``LAY002`` — stdlib-only layers (``obs`` substrate, ``analyze``) may
  import only the standard library and their own layer, at *any* scope.
* ``LAY003`` — the module-scope import graph must be cycle-free at module
  granularity.
* ``LAY004`` — engine layers never import the orchestration stack
  (harness/dse/scaleout/bench) at any scope; engines are driven, they do
  not drive.
"""

from __future__ import annotations

import sys
from typing import Iterator

from repro.analyze.contracts import ROOT, CheckConfig
from repro.analyze.findings import Finding
from repro.analyze.project import Project
from repro.analyze.rules.base import Rule, register


def _target_layer(project: Project, dotted: str) -> str:
    if dotted == project.top_package:
        return ROOT
    return project.layer_of(dotted)


@register
class LayerDAG(Rule):
    rule_id = "LAY001"
    family = "LAY"
    summary = "module-scope imports must follow the documented layer DAG"
    contract = "docs/architecture.md 'Layering' (PR 1, extended every PR since)"

    def check(self, project: Project, config: CheckConfig) -> Iterator[Finding]:
        if not config.layer_deps:
            return
        for module, edge in project.internal_edges(module_scope_only=True):
            target_layer = _target_layer(project, edge.target)
            if target_layer == module.layer or target_layer == "obs":
                continue
            allowed = config.layer_deps.get(module.layer)
            if allowed is None:
                yield self.finding(
                    module,
                    edge.line,
                    f"layer '{module.layer}' is not in the documented layer DAG; "
                    f"add it to repro.analyze.contracts.LAYER_DEPS (and "
                    f"docs/architecture.md) before importing {edge.target!r}",
                )
                continue
            if target_layer not in allowed:
                label = "the top package" if target_layer == ROOT else f"layer '{target_layer}'"
                yield self.finding(
                    module,
                    edge.line,
                    f"layer '{module.layer}' must not import {label} at module "
                    f"scope (imports {edge.target!r}); allowed layers: "
                    f"{sorted(allowed) or 'none'}",
                )


@register
class StdlibOnly(Rule):
    rule_id = "LAY002"
    family = "LAY"
    summary = "stdlib-only layers import nothing but the standard library"
    contract = "docs/architecture.md 'The observability layer' (PR 7)"

    def check(self, project: Project, config: CheckConfig) -> Iterator[Finding]:
        for module in project.modules:
            if module.layer not in config.stdlib_only_layers:
                continue
            exempt = config.stdlib_only_exempt.get(module.layer, frozenset())
            if module.basename in exempt:
                continue
            for edge in module.imports:
                if edge.internal:
                    if _target_layer(project, edge.target) != module.layer:
                        yield self.finding(
                            module,
                            edge.line,
                            f"stdlib-only layer '{module.layer}' imports the "
                            f"internal module {edge.target!r}; the substrate "
                            f"must stay importable from every layer without "
                            f"cycles",
                        )
                    continue
                top = edge.target.split(".")[0]
                if top not in sys.stdlib_module_names:
                    yield self.finding(
                        module,
                        edge.line,
                        f"stdlib-only layer '{module.layer}' imports the "
                        f"third-party module {edge.target!r}",
                    )


@register
class ImportCycles(Rule):
    rule_id = "LAY003"
    family = "LAY"
    summary = "the module-scope import graph must be cycle-free"
    contract = "docs/architecture.md 'Layering' (PR 1)"

    def check(self, project: Project, config: CheckConfig) -> Iterator[Finding]:
        graph: dict[str, set[str]] = {m.name: set() for m in project.modules}
        first_line: dict[tuple[str, str], int] = {}
        for module, edge in project.internal_edges(module_scope_only=True):
            if edge.resolved is None or edge.resolved == module.name:
                continue
            graph[module.name].add(edge.resolved)
            first_line.setdefault((module.name, edge.resolved), edge.line)

        for component in _strongly_connected(graph):
            if len(component) < 2:
                continue
            members = sorted(component)
            anchor = project.by_name[members[0]]
            line = min(
                (
                    first_line[(members[0], succ)]
                    for succ in graph[members[0]]
                    if succ in component and (members[0], succ) in first_line
                ),
                default=1,
            )
            yield self.finding(
                anchor,
                line,
                "module-scope import cycle: " + " -> ".join(members + [members[0]]),
            )


def _strongly_connected(graph: dict[str, set[str]]) -> list[set[str]]:
    """Tarjan's algorithm, iterative (the scanned tree can be deep)."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[set[str]] = []
    counter = 0

    for start in graph:
        if start in index:
            continue
        work = [(start, iter(sorted(graph[start])))]
        index[start] = lowlink[start] = counter
        counter += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in graph:
                    continue
                if succ not in index:
                    index[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components


@register
class EnginesNeverImportOrchestration(Rule):
    rule_id = "LAY004"
    family = "LAY"
    summary = "engine layers never import harness/dse/scaleout/bench, even lazily"
    contract = "docs/architecture.md 'Layering' (PR 1; facade rules PR 4)"

    def check(self, project: Project, config: CheckConfig) -> Iterator[Finding]:
        for module in project.modules:
            if module.layer not in config.engine_layers:
                continue
            for edge in module.imports:
                if not edge.internal:
                    continue
                target_layer = _target_layer(project, edge.target)
                if target_layer in config.orchestration_layers:
                    scope = "module scope" if edge.module_scope else "call time"
                    yield self.finding(
                        module,
                        edge.line,
                        f"engine layer '{module.layer}' imports orchestration "
                        f"layer '{target_layer}' at {scope} ({edge.target!r}); "
                        f"engines are driven by the harness/facade, never the "
                        f"reverse",
                    )
