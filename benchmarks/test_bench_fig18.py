"""Benchmark regenerating Figure 18: DRAM traffic normalised to GCNAX."""

from conftest import run_and_record


def test_fig18_memory_traffic(benchmark, experiment_config):
    result = run_and_record(benchmark, "fig18_memory_traffic", experiment_config)
    ratios = []
    for row in result.rows:
        assert row["gcnax"] == 1.0
        ratios.append(row["grow_with_gp"])
    # On average GROW moves roughly half of GCNAX's DRAM traffic (paper: 2x
    # reduction on average); Reddit is the known worst case.
    average = sum(ratios) / len(ratios)
    assert average < 0.8
    by_dataset = {row["dataset"]: row for row in result.rows}
    worst = max(ratios)
    assert by_dataset["reddit"]["grow_with_gp"] == worst
