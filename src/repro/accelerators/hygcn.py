"""HyGCN baseline: hybrid two-engine GCN accelerator.

HyGCN (Yan et al., HPCA 2020) predates the unified SpDeGEMM designs.  It
executes the ``(A X) W`` order with two separate engines: an aggregation
engine for the sparse-sparse product ``A X`` and a combination (systolic)
engine for the dense product ``(AX) W``.  The paper's Section II-C identifies
its two weaknesses, which this model reproduces:

* the ``(A X) W`` order performs many more MACs than ``A (X W)`` when the
  input features are wide (Figure 2);
* the two engines can be load-imbalanced, so one of them idles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accelerators.base import (
    KB,
    NNZ_BYTES,
    AcceleratorConfig,
    AcceleratorResult,
    PhaseStats,
)
from repro.accelerators.workload import LayerWorkload
from repro.gcn.layer import GCNLayer
from repro.sparse.csr import CSRMatrix


@dataclass(frozen=True)
class HyGCNConfig:
    """HyGCN architecture parameters.

    The total compute throughput is split between the two engines so the
    comparison against unified designs is iso-resource.

    Attributes:
        arch: shared architecture parameters (num_macs is the total).
        aggregation_share: fraction of the MACs assigned to the aggregation engine.
        edge_window_rows: size (in feature rows) of the aggregation engine's
            input-feature window cache; references inside the window hit.
    """

    arch: AcceleratorConfig = field(default_factory=AcceleratorConfig)
    aggregation_share: float = 0.5
    edge_window_rows: int = 256
    buffer_bytes: int = 384 * KB


class HyGCNSimulator:
    """Cycle-accounting model of HyGCN executing the ``(A X) W`` order."""

    name = "hygcn"

    def __init__(self, config: HyGCNConfig | None = None) -> None:
        self.config = config or HyGCNConfig()

    def _aggregation_engine(self, adjacency: CSRMatrix, features: np.ndarray) -> PhaseStats:
        """Sparse-sparse engine computing ``A X`` with a sliding window cache."""
        cfg = self.config
        arch = cfg.arch
        granularity = arch.access_granularity
        num_features = features.shape[1]
        feature_row_bytes = num_features * 8
        row_lines = -(-feature_row_bytes // granularity)

        # The window cache captures references to feature rows whose id is
        # within ``edge_window_rows`` of the destination row (HyGCN's vertex
        # interval / edge sharding).
        row_of_nnz = np.repeat(np.arange(adjacency.n_rows), adjacency.row_nnz())
        in_window = np.abs(adjacency.indices - row_of_nnz) < cfg.edge_window_rows
        window_misses = int((~in_window).sum())
        window_hits = int(in_window.sum())

        lhs_requested = adjacency.nnz * NNZ_BYTES
        lhs_transferred = -(-lhs_requested // granularity) * granularity
        # Window fills: each distinct feature row is loaded once per window pass.
        fills = adjacency.n_rows * row_lines * granularity
        miss_traffic = window_misses * row_lines * granularity
        output_bytes = -(-adjacency.n_rows * num_features * 8 // granularity) * granularity

        # (A X) MACs: only non-zero feature entries contribute.  We use the
        # measured feature density to scale the ideal count.
        density = float((features != 0).mean()) if features.size else 0.0
        mac_ops = int(adjacency.nnz * num_features * density)
        macs = max(1.0, arch.num_macs * cfg.aggregation_share)
        compute_cycles = mac_ops / macs
        dram_read = lhs_transferred + fills + miss_traffic
        memory_cycles = (dram_read + output_bytes) / arch.bytes_per_cycle
        return PhaseStats(
            name="aggregation",
            compute_cycles=compute_cycles,
            memory_cycles=memory_cycles,
            mac_operations=mac_ops,
            dram_read_bytes=dram_read,
            dram_write_bytes=output_bytes,
            requested_read_bytes=lhs_requested + (window_misses + adjacency.n_rows) * feature_row_bytes,
            sram_access_bytes={"aggregation_buffer": dram_read},
            extra={"window_hit_rate": window_hits / max(1, adjacency.nnz)},
        )

    def _combination_engine(self, num_nodes: int, in_features: int, out_features: int) -> PhaseStats:
        """Dense systolic engine computing ``(AX) W``."""
        cfg = self.config
        arch = cfg.arch
        granularity = arch.access_granularity
        mac_ops = num_nodes * in_features * out_features
        macs = max(1.0, arch.num_macs * (1.0 - cfg.aggregation_share))
        compute_cycles = mac_ops / macs
        ax_bytes = -(-num_nodes * in_features * 8 // granularity) * granularity
        weight_bytes = -(-in_features * out_features * 8 // granularity) * granularity
        output_bytes = -(-num_nodes * out_features * 8 // granularity) * granularity
        dram_read = ax_bytes + weight_bytes
        memory_cycles = (dram_read + output_bytes) / arch.bytes_per_cycle
        return PhaseStats(
            name="combination",
            compute_cycles=compute_cycles,
            memory_cycles=memory_cycles,
            mac_operations=mac_ops,
            dram_read_bytes=dram_read,
            dram_write_bytes=output_bytes,
            requested_read_bytes=dram_read,
            sram_access_bytes={"combination_buffer": dram_read},
        )

    def run_layer_from_gcn(self, layer: GCNLayer) -> AcceleratorResult:
        """Simulate one GCN layer directly (HyGCN needs X, not XW)."""
        agg = self._aggregation_engine(layer.adjacency, layer.features)
        comb = self._combination_engine(layer.num_nodes, layer.in_features, layer.out_features)
        # The two engines are pipelined; the slower one bounds throughput and
        # the imbalance is reported for analysis.
        slower = max(agg.total_cycles, comb.total_cycles)
        imbalance = abs(agg.total_cycles - comb.total_cycles) / max(slower, 1.0)
        result = AcceleratorResult(accelerator=self.name, workload=layer.name)
        result.phases = [agg, comb]
        result.extra["pipeline_cycles"] = slower
        result.extra["load_imbalance"] = imbalance
        result.sram_capacities = {"buffer": self.config.buffer_bytes}
        return result

    def run_layer(self, workload: LayerWorkload) -> AcceleratorResult:
        """Simulate a layer given the standard workload description.

        HyGCN computes ``(A X) W``, so it needs X (the combination phase's
        sparse matrix) rather than XW; the workload carries both.
        """
        features = workload.combination.sparse.to_dense()
        adjacency = workload.aggregation.sparse
        agg = self._aggregation_engine(adjacency, features)
        comb = self._combination_engine(
            workload.num_nodes, workload.combination.dense_shape[0], workload.combination.dense_shape[1]
        )
        result = AcceleratorResult(accelerator=self.name, workload=workload.name)
        result.phases = [agg, comb]
        slower = max(agg.total_cycles, comb.total_cycles)
        result.extra["pipeline_cycles"] = slower
        result.extra["load_imbalance"] = abs(agg.total_cycles - comb.total_cycles) / max(slower, 1.0)
        result.sram_capacities = {"buffer": self.config.buffer_bytes}
        return result
