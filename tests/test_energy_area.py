"""Unit tests for the energy and area models."""

import pytest

from repro.energy.area import (
    GCNAX_AREA_MM2_40NM,
    AreaModel,
    grow_area_breakdown,
    scale_area,
)
from repro.energy.energy_model import EnergyBreakdown, EnergyParameters, estimate_energy
from repro.energy.sram_model import SRAMEnergyModel, sram_access_energy_pj, sram_leakage_mw

KB = 1024


# ----------------------------------------------------------------------
# SRAM energy model
# ----------------------------------------------------------------------

def test_sram_access_energy_grows_with_capacity():
    assert sram_access_energy_pj(512 * KB) > sram_access_energy_pj(8 * KB)


def test_sram_access_energy_scales_with_width():
    assert sram_access_energy_pj(8 * KB, access_bytes=128) == pytest.approx(
        2 * sram_access_energy_pj(8 * KB, access_bytes=64)
    )


def test_sram_energy_cheaper_than_dram_per_byte():
    params = EnergyParameters()
    per_byte = sram_access_energy_pj(512 * KB, access_bytes=64) / 64
    assert per_byte < params.dram_energy_pj_per_byte / 2


def test_sram_zero_capacity():
    assert sram_access_energy_pj(0) == 0.0
    assert sram_leakage_mw(0) == 0.0


def test_sram_leakage_linear():
    assert sram_leakage_mw(64 * KB) == pytest.approx(2 * sram_leakage_mw(32 * KB))


def test_sram_model_dynamic_and_leakage():
    model = SRAMEnergyModel(capacity_bytes=32 * KB)
    assert model.dynamic_energy_nj(1000) > 0
    assert model.leakage_energy_nj(runtime_cycles=1e6) > 0
    assert model.leakage_energy_nj(0) == 0.0


# ----------------------------------------------------------------------
# Energy model
# ----------------------------------------------------------------------

def test_energy_breakdown_total():
    breakdown = EnergyBreakdown(mac_nj=1, register_nj=2, sram_nj=3, dram_nj=4, leakage_nj=5)
    assert breakdown.total_nj == 15
    assert breakdown.as_dict()["total"] == 15


def test_energy_breakdown_normalised():
    a = EnergyBreakdown(dram_nj=10)
    b = EnergyBreakdown(dram_nj=20)
    assert a.normalized_to(b) == 0.5


def test_estimate_energy_components():
    breakdown = estimate_energy(
        mac_operations=1_000_000,
        dram_bytes=10_000_000,
        sram_access_events={"buffer": (256 * KB, 5_000_000)},
        runtime_cycles=1_000_000,
        area_mm2=5.0,
    )
    assert breakdown.mac_nj > 0
    assert breakdown.dram_nj > breakdown.sram_nj
    assert breakdown.leakage_nj > 0
    assert breakdown.total_nj == pytest.approx(
        breakdown.mac_nj
        + breakdown.register_nj
        + breakdown.sram_nj
        + breakdown.dram_nj
        + breakdown.leakage_nj
    )


def test_estimate_energy_zero_activity():
    breakdown = estimate_energy(0, 0, {}, 0.0, 0.0)
    assert breakdown.total_nj == 0.0


def test_dram_energy_proportional_to_traffic():
    low = estimate_energy(0, 1_000_000, {}, 0, 0)
    high = estimate_energy(0, 2_000_000, {}, 0, 0)
    assert high.dram_nj == pytest.approx(2 * low.dram_nj)


# ----------------------------------------------------------------------
# Area model
# ----------------------------------------------------------------------

def test_scale_area_quadratic():
    assert scale_area(4.0, 65, 32.5) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        scale_area(1.0, 0, 40)


def test_default_breakdown_matches_paper_total():
    breakdown = grow_area_breakdown(technology_nm=65)
    assert breakdown.total_mm2 == pytest.approx(5.785, abs=0.01)
    # SRAM dominates the area (paper: 88%).
    assert breakdown.sram_fraction() > 0.8


def test_breakdown_components_match_paper():
    breakdown = grow_area_breakdown(technology_nm=65)
    assert breakdown.components["hdn_cache"] == pytest.approx(3.569, abs=0.01)
    assert breakdown.components["mac_array"] == pytest.approx(0.613, abs=0.01)


def test_scaled_to_40nm_below_gcnax():
    breakdown = grow_area_breakdown(technology_nm=40)
    assert breakdown.total_mm2 < GCNAX_AREA_MM2_40NM
    assert breakdown.total_mm2 == pytest.approx(2.19, abs=0.1)


def test_area_scales_with_sizing():
    model = AreaModel()
    assert model.hdn_cache_area(1024 * KB) == pytest.approx(2 * model.hdn_cache_area(512 * KB))
    assert model.mac_array_area(32) == pytest.approx(2 * model.mac_array_area(16))


def test_breakdown_as_dict():
    breakdown = grow_area_breakdown()
    as_dict = breakdown.as_dict()
    assert as_dict["total"] == pytest.approx(breakdown.total_mm2)
    assert "hdn_cache" in as_dict
