"""Benchmark regenerating Figure 24: performance scalability with PE count."""


def test_fig24_pe_scaling(suite_report):
    result = suite_report.result("fig24_pe_scaling")
    for row in result.rows:
        # Throughput is normalised to one PE and never decreases with more PEs.
        assert abs(row["pe_1"] - 1.0) < 1e-6
        assert row["pe_2"] >= row["pe_1"] - 1e-9
        assert row["pe_16"] >= row["pe_4"] - 1e-9
    # The large graphs scale much further than the small ones (which fit a
    # single PE's working set).
    by_dataset = {row["dataset"]: row for row in result.rows}
    if "amazon" in by_dataset and "cora" in by_dataset:
        assert by_dataset["amazon"]["pe_16"] > by_dataset["cora"]["pe_16"]
