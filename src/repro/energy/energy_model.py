"""Accelerator energy model (Horowitz-style per-operation energies).

The paper breaks energy into MAC dynamic, register-file dynamic, SRAM
dynamic, DRAM dynamic, and leakage (Figure 22).  This module converts the
activity counters produced by an accelerator simulation (MAC count, SRAM
access bytes, DRAM traffic, runtime) into that breakdown.

Per-operation energies are anchored to Horowitz ISSCC'14 (45 nm): a 32-bit
floating-point multiply-add costs about 4.6 pJ, a 64-bit one roughly double;
DRAM access energy is taken as 20 pJ per byte (about 1.3 nJ per 64 B line).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.energy.sram_model import SRAMEnergyModel


@dataclass(frozen=True)
class EnergyParameters:
    """Per-operation energy constants.

    Attributes:
        mac_energy_pj: energy of one multiply-accumulate (64-bit datapath).
        register_energy_pj: register-file energy accounted per MAC operand pair.
        dram_energy_pj_per_byte: DRAM dynamic energy per byte moved.
        leakage_mw_per_mm2: static power density used for leakage, applied to
            the accelerator's area.
        frequency_ghz: clock frequency used to turn cycles into seconds.
    """

    mac_energy_pj: float = 9.2
    register_energy_pj: float = 1.2
    dram_energy_pj_per_byte: float = 20.0
    leakage_mw_per_mm2: float = 1.5
    frequency_ghz: float = 1.0


@dataclass
class EnergyBreakdown:
    """Energy consumed by one simulated run, in nanojoules, per component."""

    mac_nj: float = 0.0
    register_nj: float = 0.0
    sram_nj: float = 0.0
    dram_nj: float = 0.0
    leakage_nj: float = 0.0

    @property
    def total_nj(self) -> float:
        """Total energy of the run in nanojoules."""
        return self.mac_nj + self.register_nj + self.sram_nj + self.dram_nj + self.leakage_nj

    def as_dict(self) -> dict[str, float]:
        """Component-name to nanojoule mapping (plus the total)."""
        return {
            "mac": self.mac_nj,
            "register_file": self.register_nj,
            "sram": self.sram_nj,
            "dram": self.dram_nj,
            "leakage": self.leakage_nj,
            "total": self.total_nj,
        }

    def normalized_to(self, baseline: "EnergyBreakdown") -> float:
        """This run's total energy divided by a baseline's total energy."""
        if baseline.total_nj == 0:
            return float("nan")
        return self.total_nj / baseline.total_nj


def estimate_energy(
    mac_operations: int,
    dram_bytes: int,
    sram_access_events: dict[str, tuple[int, int]],
    runtime_cycles: float,
    area_mm2: float,
    params: EnergyParameters | None = None,
) -> EnergyBreakdown:
    """Convert activity counters into an energy breakdown.

    Args:
        mac_operations: number of effectual MACs executed.
        dram_bytes: total DRAM bytes moved (reads + writes).
        sram_access_events: mapping from buffer name to
            ``(capacity_bytes, access_bytes_moved)``; each buffer's dynamic
            energy uses its own CACTI-like per-access cost.
        runtime_cycles: simulated runtime in accelerator cycles.
        area_mm2: chip area used to scale leakage power.
        params: energy constants (defaults to :class:`EnergyParameters`).
    """
    params = params or EnergyParameters()
    breakdown = EnergyBreakdown()
    breakdown.mac_nj = mac_operations * params.mac_energy_pj / 1e3
    breakdown.register_nj = mac_operations * params.register_energy_pj / 1e3
    breakdown.dram_nj = dram_bytes * params.dram_energy_pj_per_byte / 1e3

    sram_total = 0.0
    for _name, (capacity_bytes, access_bytes_moved) in sram_access_events.items():
        model = SRAMEnergyModel(capacity_bytes=capacity_bytes)
        if model.access_bytes > 0:
            accesses = access_bytes_moved / model.access_bytes
        else:
            accesses = 0
        sram_total += model.dynamic_energy_nj(int(accesses))
    breakdown.sram_nj = sram_total

    seconds = runtime_cycles / (params.frequency_ghz * 1e9)
    leakage_watts = params.leakage_mw_per_mm2 * 1e-3 * area_mm2
    breakdown.leakage_nj = leakage_watts * seconds * 1e9
    return breakdown
