"""The session: one ``run(request) -> RunResult`` entry point for everything.

:class:`Session` is the facade every consumer in the repository goes
through — the experiment harness, the DSE objective evaluation, the
scale-out engine's per-chip runs and the ``sim``/``scaleout`` CLI verbs.
It layers three levels of reuse under a single dispatch path:

1. an **in-process memo** keyed by the request's canonical cache key, so
   repeated identical runs inside one process (sweeps, suite experiments
   sharing a baseline, the scale-out 1-chip reference) never re-simulate;
2. the harness **on-disk** :class:`~repro.harness.cache.ResultCache`
   (when the session is given one, or a ``results_dir`` to build one in),
   keyed by the same canonical request plus the source-tree version, so
   re-runs across processes are incremental exactly like suite re-runs;
3. a **process-pool fan-out** in :meth:`Session.run_batch`, mirroring the
   suite/DSE/scale-out executors: workers rebuild the per-process dataset
   and preprocessing-plan memos deterministically, results travel as
   JSON-normalised payloads, and serial, parallel and cached batches are
   therefore identical.

Because every result is normalised through its JSON form before it is
memoised, stored or returned, a fresh run, a memo hit, a disk hit and a
worker-process run of the same request all yield byte-identical payloads.
"""

from __future__ import annotations

import copy
import json
import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.api.backends import get_backend
from repro.api.request import SimRequest
from repro.api.result import RunResult
from repro.obs import TELEMETRY_KEY, aggregate_phases, metrics, trace
from repro.obs import ledger as run_ledger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.harness.cache import ResultCache

#: Process-wide memo of run payloads, keyed by the request's cache key.
#: Consulted even by cache-disabled sessions (mirroring the scale-out
#: engine's historical chip memo); cleared via :func:`clear_memo`.
_RUN_MEMO: dict[str, dict] = {}

#: Memo entry bound: payloads carry full per-phase detail, so an unbounded
#: memo would grow with every distinct request for the life of the process
#: (e.g. a long DSE search).  Least-recently-used eviction keeps the hot
#: working set — sweeps, shared baselines, the 1-chip reference — resident:
#: insertion order is recency order, and :meth:`Session._lookup` refreshes
#: an entry's position on every memo hit.
_MEMO_LIMIT = 4096


def clear_memo() -> None:
    """Drop every memoised run payload (tests that vary global state)."""
    _RUN_MEMO.clear()


def _memoise(key: str, payload: dict) -> None:
    """Insert one payload, evicting least-recent entries past :data:`_MEMO_LIMIT`."""
    _RUN_MEMO.pop(key, None)  # repro: allow(CONC001) per-process LRU memo; detached workers rebuild payloads deterministically, never share it back
    while len(_RUN_MEMO) >= _MEMO_LIMIT:
        _RUN_MEMO.pop(next(iter(_RUN_MEMO)))  # repro: allow(CONC001) per-process LRU memo eviction; see above
    _RUN_MEMO[key] = payload  # repro: allow(CONC001) per-process LRU memo insert; see above


def _normalise(payload: dict) -> dict:
    """Round-trip a payload through JSON so fresh, memoised, cached and
    worker-produced results are byte-identical (numpy scalars included)."""
    from repro.harness.report import json_default

    return json.loads(json.dumps(payload, default=json_default))


def _execute_request(request_dict: dict, telemetry: bool = False) -> dict:
    """Run one request in a worker; module-level so it pickles across.

    Workers rebuild the (memoised) bundles and shard plans from the request,
    which is deterministic — the same mechanism the suite, DSE and scale-out
    executors rely on.  They run detached (``session=None``): composite
    backends fall back to serial, memo-only execution, and the parent
    session persists the whole-run payload on their behalf.

    With ``telemetry`` the worker records its spans and metrics locally and
    ships them home under :data:`~repro.obs.TELEMETRY_KEY`, attached *after*
    normalisation; the parent strips the key before the payload reaches
    memoisation, storage or the caller, so the byte-identity contract is
    untouched.
    """
    request = SimRequest.from_dict(request_dict)
    if not telemetry:
        start = time.perf_counter()  # repro: allow(DET001) wall-time metadata, excluded from byte-identity
        result = get_backend(request.backend).run(request, session=None)
        result.seconds = time.perf_counter() - start  # repro: allow(DET001) wall-time metadata, excluded from byte-identity
        return _normalise(result.to_dict())
    # Start from a clean slate: a forked worker inherits the parent's (or a
    # previous task's) tracer state, which must not leak into this task.
    trace.disable()  # repro: allow(CONC002) clean-slate reset of inherited tracer state before scoped collection; worker-local by design
    trace.drain()  # repro: allow(CONC002) clean-slate drain of inherited spans; worker-local by design
    with trace.collect() as spans, metrics.scoped() as task_metrics:
        with trace.span(
            "session.execute", backend=request.backend, dataset=request.dataset
        ):
            start = time.perf_counter()  # repro: allow(DET001) wall-time metadata, excluded from byte-identity
            result = get_backend(request.backend).run(request, session=None)
            result.seconds = time.perf_counter() - start  # repro: allow(DET001) wall-time metadata, excluded from byte-identity
        metrics.observe("session.execute_seconds", result.seconds)
    payload = _normalise(result.to_dict())
    payload[TELEMETRY_KEY] = {"spans": spans, "metrics": task_metrics}
    return payload


class Session:
    """The one programmatic entry point for running simulations.

    Args:
        cache: explicit on-disk result cache to read/write.
        results_dir: build a :class:`ResultCache` under
            ``results_dir / "cache"`` (shared with the suite) when no
            explicit ``cache`` is given and ``use_cache`` is True.
        use_cache: disable to never read or write on-disk entries.
        force: recompute even on memo/cache hits (fresh results re-stored).
        jobs: worker processes for :meth:`run_batch`; ``1`` runs serially
            in-process, ``0`` uses one worker per CPU.
        memoize: disable to skip the in-process memo as well.
    """

    def __init__(
        self,
        cache: "ResultCache | None" = None,
        results_dir: str | Path | None = None,
        use_cache: bool = True,
        force: bool = False,
        jobs: int = 1,
        memoize: bool = True,
    ):
        self.use_cache = use_cache
        self.force = force
        self.jobs = jobs if jobs > 0 else (os.cpu_count() or 1)
        self.memoize = memoize
        if cache is not None:
            self.cache = cache
        elif use_cache and results_dir is not None:
            from repro.harness.cache import ResultCache

            self.cache = ResultCache(Path(results_dir) / "cache")
        else:
            self.cache = None

    # -- cache plumbing ----------------------------------------------------

    def _entry_name(self, request: SimRequest) -> str:
        """On-disk entry name: readable prefix plus the canonical key."""
        return f"api-{request.backend}-{request.dataset}-{request.cache_key()}"

    def _lookup(self, request: SimRequest) -> RunResult | None:
        """Memo first, then disk; misses (or ``force``) return ``None``."""
        if self.force:
            return None
        key = request.cache_key()
        payload = _RUN_MEMO.get(key) if self.memoize else None
        memo_hit = payload is not None
        if payload is not None:
            # Refresh recency so a repeatedly-hit entry survives eviction
            # pressure (the memo is LRU, not FIFO).
            _RUN_MEMO[key] = _RUN_MEMO.pop(key)  # repro: allow(CONC001) per-process LRU recency refresh; a worker's reorder affects only its own memo
            metrics.inc("session.memo_hits")
        if payload is None and self.cache is not None and self.use_cache:
            entry = self.cache.get(self._entry_name(request), request.experiment_config())
            if entry is not None:
                payload = entry.metadata.get("run_result") or None
                if payload is not None:
                    metrics.inc("session.disk_hits")
                    if self.memoize:
                        _memoise(key, dict(payload))
        if payload is None:
            return None
        self._record_ledger(request, "memo" if memo_hit else "disk", payload)
        # Deep copy: the payload's nested dicts live in the process-wide
        # memo (or the cache entry); a caller mutating a returned detail
        # dict must not poison later hits of the same request.
        result = RunResult.from_dict(copy.deepcopy(payload))
        result.status = "cached"
        result.seconds = 0.0
        return result

    def _admit(self, request: SimRequest, payload: dict) -> RunResult:
        """Memoise and persist a freshly produced (normalised) payload."""
        if self.memoize:
            _memoise(request.cache_key(), copy.deepcopy(payload))
        if self.cache is not None and self.use_cache:
            self._store(request, payload)
        return RunResult.from_dict(payload)

    def _store(self, request: SimRequest, payload: dict) -> None:
        from repro.harness.report import ExperimentResult

        entry_name = self._entry_name(request)
        entry = ExperimentResult(
            name=entry_name,
            paper_reference="API session run",
            description=f"{request.backend} run of {request.dataset}",
            columns=["backend", "dataset", "cycles"],
            rows=[
                {
                    "backend": request.backend,
                    "dataset": request.dataset,
                    "cycles": payload.get("metrics", {}).get("cycles", 0.0),
                }
            ],
            metadata={"run_result": dict(payload)},
        )
        self.cache.put(
            entry_name,
            request.experiment_config(),
            entry,
            payload.get("seconds", 0.0),
        )

    # -- run ledger --------------------------------------------------------

    @staticmethod
    def _record_ledger(
        request: SimRequest,
        outcome: str,
        payload: dict | None = None,
        phases: dict | None = None,
    ) -> None:
        """One ledger line per finalised run (memo/disk/fresh/dedup/failed).

        Recording happens strictly after the payload has been normalised
        and admitted, so the bytes a caller (or the memo, or the disk
        cache) sees are identical whether the ledger is on or off.
        """
        if not run_ledger.ledger_enabled():
            return
        payload = payload or {}
        run_ledger.record_run(
            "session",
            f"{request.backend}:{request.dataset}",
            outcome=outcome,
            wall_seconds=payload.get("seconds", 0.0) if outcome == "fresh" else 0.0,
            backend=request.backend,
            dataset=request.dataset,
            cache_key=request.cache_key(),
            phases=phases,
            metrics=payload.get("metrics"),
        )

    # -- entry points ------------------------------------------------------

    def _execute_in_process(self, request: SimRequest) -> tuple[dict, dict]:
        """Run one request inline; returns ``(payload, phases)``.

        The backend is handed this session so composite backends
        (``scaleout``) inherit its jobs/cache wiring.  The per-phase
        breakdown is collected — via the nesting-safe ``trace.collect``,
        which leaves user-enabled tracing untouched — only while the run
        ledger is recording, and is empty otherwise.
        """
        if not run_ledger.ledger_enabled():
            return self._execute_body(request), {}
        with trace.collect() as events:
            payload = self._execute_body(request)
        return payload, aggregate_phases(events)

    def _execute_body(self, request: SimRequest) -> dict:
        with trace.span(
            "session.execute", backend=request.backend, dataset=request.dataset
        ):
            start = time.perf_counter()  # repro: allow(DET001) wall-time metadata, excluded from byte-identity
            result = get_backend(request.backend).run(request, session=self)
            result.seconds = time.perf_counter() - start  # repro: allow(DET001) wall-time metadata, excluded from byte-identity
        metrics.observe("session.execute_seconds", result.seconds)
        return _normalise(result.to_dict())

    def run(self, request: SimRequest) -> RunResult:
        """Execute one request (memo -> disk cache -> backend dispatch)."""
        return self.run_batch([request])[0]

    def run_batch(
        self,
        requests: Sequence[SimRequest],
        progress: Callable[[RunResult], None] | None = None,
    ) -> list[RunResult]:
        """Execute many requests, fanning misses out across worker processes.

        Results come back in request order.  Requests whose canonical key
        repeats within the batch are simulated once (later copies report
        ``cached``).  With ``jobs > 1`` the misses run in a
        ``ProcessPoolExecutor``; serial and parallel batches produce
        identical results (workers run detached — composite backends
        execute serially inside them, and only the parent writes the disk
        cache).  ``progress`` (when given) is called once per request as its
        result is finalised: cache hits fire during the initial sweep,
        fresh runs as they complete (completion order under ``jobs > 1``),
        duplicates right after their source.
        """
        metrics.inc("session.requests", len(requests))
        results: list[RunResult | None] = [None] * len(requests)
        to_run: list[int] = []
        first_index: dict[str, int] = {}
        dups_of_source: dict[int, list[int]] = {}
        for index, request in enumerate(requests):
            hit = self._lookup(request)
            if hit is not None:
                results[index] = hit
                if progress is not None:
                    progress(hit)
                continue
            key = request.cache_key()
            if key in first_index and not self.force:
                source = first_index[key]
                dups_of_source.setdefault(source, []).append(index)
                metrics.inc("session.batch_dedup")
            else:
                first_index[key] = index
                to_run.append(index)
        metrics.inc("session.fresh_runs", len(to_run))

        def finalise(index: int, payload: dict, phases: dict | None = None) -> None:
            results[index] = self._admit(requests[index], payload)
            self._record_ledger(requests[index], "fresh", payload, phases)
            if progress is not None:
                progress(results[index])
            for dup in dups_of_source.get(index, ()):
                duplicate = RunResult.from_dict(copy.deepcopy(payload))
                duplicate.status = "cached"
                duplicate.seconds = 0.0
                results[dup] = duplicate
                self._record_ledger(requests[dup], "dedup", payload)
                if progress is not None:
                    progress(duplicate)

        with trace.span(
            "session.run_batch", requests=len(requests), fresh=len(to_run)
        ):
            if self.jobs > 1 and len(to_run) > 1:
                # Ship worker telemetry home only while someone consumes
                # it — the user's trace, or the run ledger (which needs
                # the per-phase breakdown); the side-channel is not free.
                telemetry = trace.enabled or run_ledger.ledger_enabled()
                with ProcessPoolExecutor(
                    max_workers=min(self.jobs, len(to_run))
                ) as pool:
                    pending = {
                        pool.submit(
                            _execute_request, requests[index].to_dict(), telemetry
                        ): index
                        for index in to_run
                    }
                    while pending:
                        done, _ = wait(pending, return_when=FIRST_COMPLETED)
                        for future in done:
                            index = pending.pop(future)
                            try:
                                payload = future.result()
                            except Exception:
                                self._record_ledger(requests[index], "failed")
                                raise
                            shipped = payload.pop(TELEMETRY_KEY, None)
                            phases = None
                            if shipped is not None:
                                if trace.enabled:
                                    trace.ingest(shipped.get("spans", ()))  # repro: allow(CONC002) parent-only branch: detached workers run jobs=1 sessions, so the pool/ingest path never executes inside a worker
                                    metrics.merge(shipped.get("metrics"))  # repro: allow(CONC002) parent-only branch; see above
                                if run_ledger.ledger_enabled():
                                    phases = aggregate_phases(
                                        shipped.get("spans", ())
                                    )
                            finalise(index, payload, phases)
            else:
                for index in to_run:
                    try:
                        payload, phases = self._execute_in_process(requests[index])
                    except Exception:
                        self._record_ledger(requests[index], "failed")
                        raise
                    finalise(index, payload, phases)

        return [result for result in results if result is not None]


_DEFAULT_SESSION: Session | None = None
_DEFAULT_SESSION_LOCK = threading.Lock()


def get_session() -> Session:
    """The shared in-process session (memo only, no disk cache).

    This is what the harness experiments, the sweep evaluators and the DSE
    objective layer run through, so any two of them asking for the same
    simulation pay for it once per process.  Construction is guarded by a
    double-checked lock so concurrent first calls share one session.
    """
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        with _DEFAULT_SESSION_LOCK:
            if _DEFAULT_SESSION is None:
                # repro: allow(CONC001) per-process shared session; a worker builds its own and its memo is rebuilt deterministically from requests
                _DEFAULT_SESSION = Session(use_cache=False)
    return _DEFAULT_SESSION
