"""Human-readable digest of a trace document — the ``repro trace`` verb.

Reads the Chrome trace-event JSON that ``--trace`` emits and prints what
you usually open Perfetto to learn: which spans dominate, how the
top-level phases split the wall clock, and how the caches behaved.

Stdlib-only, like everything under :mod:`repro.obs`.
"""

from __future__ import annotations

from repro.obs.metrics import hit_rate


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Plain-text column alignment, shared by ``repro trace`` and ``repro stats``."""
    widths = [len(header) for header in headers]
    for row in rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _format_seconds(us: float) -> str:
    return f"{us / 1e6:.3f}s"


def aggregate_spans(document: dict) -> dict[str, dict[str, float]]:
    """Per-name totals over the complete (``"ph": "X"``) events."""
    totals: dict[str, dict[str, float]] = {}
    for event in document.get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        entry = totals.setdefault(event["name"], {"count": 0, "total_us": 0.0})
        entry["count"] += 1
        entry["total_us"] += event["dur"]
    return totals


def phase_breakdown(document: dict) -> list[tuple[str, float, int]]:
    """(name, total µs, count) of root spans — those without a parent.

    Root spans are the coarse pipeline phases (a session execute, a suite
    run, a bench rung); their self-reported parents arrived via span args.
    """
    totals: dict[str, dict[str, float]] = {}
    for event in document.get("traceEvents", []):
        if event.get("ph") != "X" or (event.get("args") or {}).get("parent"):
            continue
        entry = totals.setdefault(event["name"], {"count": 0, "total_us": 0.0})
        entry["count"] += 1
        entry["total_us"] += event["dur"]
    return sorted(
        ((name, entry["total_us"], int(entry["count"])) for name, entry in totals.items()),
        key=lambda item: -item[1],
    )


def cache_summary(document: dict) -> list[tuple[str, float | None, str]]:
    """(cache, hit rate, detail) rows from the embedded metrics snapshot."""
    counters = (
        document.get("otherData", {}).get("metrics", {}).get("counters", {})
    )
    memo_hits = counters.get("session.memo_hits", 0)
    disk_hits = counters.get("session.disk_hits", 0)
    fresh = counters.get("session.fresh_runs", 0)
    rows = [
        (
            "session memo",
            hit_rate(memo_hits, disk_hits + fresh),
            f"{memo_hits:g} hits",
        ),
        (
            "session disk",
            hit_rate(disk_hits, fresh),
            f"{disk_hits:g} hits",
        ),
        (
            "result cache",
            hit_rate(counters.get("cache.hits", 0), counters.get("cache.misses", 0)),
            f"{counters.get('cache.hits', 0):g} hits, "
            f"{counters.get('cache.writes', 0):g} writes",
        ),
    ]
    dedup = counters.get("session.batch_dedup", 0)
    if dedup:
        rows.append(("batch dedup", None, f"{dedup:g} collapsed"))
    return rows


def summarize_trace(document: dict, top: int = 15) -> str:
    """The full text summary ``repro trace`` prints."""
    spans = aggregate_spans(document)
    sections: list[str] = []

    if not spans:
        sections.append("trace contains no spans")
    else:
        ranked = sorted(spans.items(), key=lambda item: -item[1]["total_us"])[:top]
        rows = [
            [
                name,
                str(int(entry["count"])),
                _format_seconds(entry["total_us"]),
                _format_seconds(entry["total_us"] / entry["count"]),
            ]
            for name, entry in ranked
        ]
        sections.append(
            f"Top spans by total time (showing {len(rows)} of {len(spans)})\n"
            + format_table(["span", "count", "total", "mean"], rows)
        )

        phases = phase_breakdown(document)
        phase_total = sum(total for _, total, _ in phases)
        if phases and phase_total > 0:
            rows = [
                [name, str(count), _format_seconds(total), f"{100 * total / phase_total:.1f}%"]
                for name, total, count in phases
            ]
            sections.append(
                "Phase breakdown (root spans)\n"
                + format_table(["phase", "count", "total", "share"], rows)
            )

    cache_rows = [
        [name, "-" if rate is None else f"{100 * rate:.1f}%", detail]
        for name, rate, detail in cache_summary(document)
    ]
    sections.append(
        "Cache behaviour\n" + format_table(["cache", "hit rate", "detail"], cache_rows)
    )
    return "\n\n".join(sections)
