"""Synthetic graph generators.

Real-world graphs studied by the paper follow power-law degree distributions
and exhibit community structure; both properties are what GROW's HDN cache
and graph-partitioning pass exploit.  The generators here produce graphs with
controlled node count, average degree, degree-distribution skew and
community structure so the dataset stand-ins in :mod:`repro.graph.datasets`
can mimic each of the paper's eight workloads.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph


def _merge_sorted_unique(unique_keys: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Sorted-unique union of an already-unique key set and a new batch.

    Identical output to ``np.unique(np.concatenate([unique_keys, keys]))``
    (sorted ascending, duplicates dropped) via sort + adjacent-difference
    mask, which avoids ``np.unique``'s hash-table path — the single most
    expensive step of edge-batch deduplication at million-edge sizes.
    """
    merged = np.concatenate([unique_keys, keys])
    if merged.size == 0:
        return merged
    merged.sort()
    keep = np.empty(merged.size, dtype=bool)
    keep[0] = True
    np.not_equal(merged[1:], merged[:-1], out=keep[1:])
    return merged[keep]


def _edgeless_graph(name: str, communities: np.ndarray | None = None) -> Graph:
    """The degenerate single-node graph every generator collapses to."""
    empty = np.empty(0, dtype=np.int64)
    return Graph(
        num_nodes=1, src=empty, dst=empty, name=name, undirected=True,
        communities=communities,
    )


def powerlaw_degree_sequence(
    num_nodes: int,
    average_degree: float,
    exponent: float = 2.1,
    rng: np.random.Generator | None = None,
    max_degree: int | None = None,
) -> np.ndarray:
    """Draw a power-law degree sequence with a target mean.

    Degrees are sampled from a Pareto-like distribution with the given
    exponent and then rescaled so the empirical mean matches
    ``average_degree``.  The heaviest nodes are clipped to ``max_degree``
    (default: ``num_nodes - 1``), the lightest are floored to 1; the scale
    is then re-fit against the *quantised* sequence and any residual is
    redistributed one unit at a time, so the empirical mean lands on the
    target (to within 1/num_nodes) instead of drifting low whenever the
    clip shaves mass off the heavy tail.  Targets outside the reachable
    ``[1, max_degree]`` band saturate at the nearest bound.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if average_degree <= 0:
        raise ValueError("average_degree must be positive")
    cap = max_degree if max_degree is not None else num_nodes - 1
    cap = max(1, cap)
    target = min(max(average_degree, 1.0), float(cap))
    with np.errstate(over="ignore"):
        raw = (1.0 - rng.random(num_nodes)) ** (-1.0 / (exponent - 1.0))
    # Exponents near 1 overflow the Pareto transform to inf at large sizes;
    # a draw that deep in the tail lands on the cap after quantisation no
    # matter its exact value, so a huge finite stand-in is exact — and keeps
    # the mean/scale arithmetic below NaN-free.
    raw = np.minimum(raw, 1e18)

    def quantise(scale: float) -> np.ndarray:
        return np.minimum(np.maximum(1, np.round(raw * scale)).astype(np.int64), cap)

    # Multiplicative re-fit: the quantised mean is monotone in the scale, so
    # a few rounds of scale *= target/mean converge to the neighbourhood of
    # the target while preserving the distribution's shape.
    scale = target / raw.mean()
    degrees = quantise(scale)
    for _ in range(24):
        mean = degrees.mean()
        if abs(mean - target) <= 0.005 * target:
            break
        scale *= target / mean
        degrees = quantise(scale)

    # Exact redistribution of the residual quantisation error: add/remove
    # single units at randomly chosen nodes that have headroom.
    total_target = int(round(num_nodes * target))
    deficit = total_target - int(degrees.sum())
    while deficit != 0:
        if deficit > 0:
            eligible = np.where(degrees < cap)[0]
            step = 1
        else:
            eligible = np.where(degrees > 1)[0]
            step = -1
        if eligible.size == 0:
            break  # target saturates the reachable band
        chosen = rng.choice(eligible, size=min(abs(deficit), eligible.size), replace=False)
        degrees[chosen] += step
        deficit = total_target - int(degrees.sum())
    return degrees


def chung_lu_graph(
    num_nodes: int,
    average_degree: float,
    exponent: float = 2.1,
    num_communities: int = 1,
    intra_community_prob: float = 0.8,
    rng: np.random.Generator | None = None,
    name: str = "chung-lu",
    max_degree: int | None = None,
) -> Graph:
    """Power-law graph with optional planted community structure.

    Edges are sampled with probability proportional to the product of the
    endpoints' target degrees (the Chung-Lu model).  When
    ``num_communities > 1``, a fraction ``intra_community_prob`` of each
    node's edges is drawn from its own community, giving the graph the
    clustered structure that makes graph partitioning effective.  The planted
    community of every node is recorded on the returned graph's
    ``communities`` attribute.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if num_nodes == 1:
        # A single node admits no self-loop-free edge; the self-loop
        # redirection below would otherwise draw from an empty range.
        return _edgeless_graph(name, communities=np.zeros(1, dtype=np.int64))
    if max_degree is None:
        # Cap hub degrees the way real graphs do: the heaviest node touches a
        # few percent of the graph, not (nearly) all of it.
        max_degree = int(min(num_nodes - 1, max(50, 12 * average_degree, num_nodes * 0.04)))
    degrees = powerlaw_degree_sequence(num_nodes, average_degree, exponent, rng, max_degree=max_degree)
    community = rng.integers(0, max(1, num_communities), size=num_nodes)

    # Pre-compute, per community, the node list and a degree-proportional
    # cumulative distribution so endpoint selection is a batched searchsorted.
    # Intra-community draws use a softened (square-root) degree bias so the
    # community structure is not washed out by the global hubs.
    weights = degrees.astype(np.float64)
    global_cdf = np.cumsum(weights)
    global_cdf /= global_cdf[-1]
    community_members: list[np.ndarray] = []
    community_cdfs: list[np.ndarray] = []
    for c in range(max(1, num_communities)):
        members = np.where(community == c)[0]
        if members.size == 0:
            members = np.arange(num_nodes)
        cdf = np.cumsum(np.sqrt(weights[members]))
        cdf /= cdf[-1]
        community_members.append(members)
        community_cdfs.append(cdf)

    def _sample_batch(batch_size: int) -> tuple[np.ndarray, np.ndarray]:
        """Sample one batch of candidate edges (may contain duplicates)."""
        src = np.searchsorted(global_cdf, rng.random(batch_size)).astype(np.int64)
        dst = np.empty(batch_size, dtype=np.int64)
        intra = rng.random(batch_size) < intra_community_prob
        inter_mask = ~intra if num_communities > 1 else np.ones(batch_size, dtype=bool)
        n_inter = int(inter_mask.sum())
        if n_inter:
            dst[inter_mask] = np.searchsorted(global_cdf, rng.random(n_inter))
        if num_communities > 1:
            src_community = community[src]
            for c in range(num_communities):
                mask = intra & (src_community == c)
                count = int(mask.sum())
                if count == 0:
                    continue
                picks = np.searchsorted(community_cdfs[c], rng.random(count))
                dst[mask] = community_members[c][picks]
        # Remove self loops by redirecting them to a random other node.
        loops = src == dst
        if loops.any():
            dst[loops] = (
                dst[loops] + 1 + rng.integers(0, num_nodes - 1, size=int(loops.sum()))
            ) % num_nodes
        return src, dst

    # Degree-proportional sampling concentrates edges on hub nodes, so many
    # draws collide with already-sampled edges.  Sample in rounds until the
    # number of *unique* undirected edges reaches the target implied by the
    # requested average degree (bounded to avoid pathological loops).
    target_edges = max(1, int(round(num_nodes * average_degree / 2)))
    unique_keys = np.empty(0, dtype=np.int64)
    for _round in range(12):
        remaining = target_edges - unique_keys.size
        if remaining <= 0:
            break
        batch = max(256, int(remaining * 1.5))
        src, dst = _sample_batch(batch)
        lo = np.minimum(src, dst)
        hi = np.maximum(src, dst)
        keys = lo * np.int64(num_nodes) + hi
        unique_keys = _merge_sorted_unique(unique_keys, keys)
    if unique_keys.size > target_edges:
        unique_keys = rng.permutation(unique_keys)[:target_edges]
    src = (unique_keys // num_nodes).astype(np.int64)
    dst = (unique_keys % num_nodes).astype(np.int64)
    return Graph(
        num_nodes=num_nodes,
        src=src,
        dst=dst,
        name=name,
        undirected=True,
        communities=community.astype(np.int64),
    )


def erdos_renyi_graph(
    num_nodes: int,
    average_degree: float,
    rng: np.random.Generator | None = None,
    name: str = "erdos-renyi",
) -> Graph:
    """Uniform random graph (no power law); used for non-power-law studies."""
    if rng is None:
        rng = np.random.default_rng(0)
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if num_nodes == 1:
        return _edgeless_graph(name)
    num_edges = max(1, int(round(num_nodes * average_degree / 2)))
    src = rng.integers(0, num_nodes, size=num_edges)
    dst = rng.integers(0, num_nodes, size=num_edges)
    loops = src == dst
    if loops.any():
        dst[loops] = (dst[loops] + 1) % num_nodes
    return Graph(num_nodes=num_nodes, src=src, dst=dst, name=name, undirected=True)


def powerlaw_cluster_graph(
    num_nodes: int,
    average_degree: float,
    triangle_prob: float = 0.3,
    rng: np.random.Generator | None = None,
    name: str = "powerlaw-cluster",
) -> Graph:
    """Holme-Kim style preferential-attachment graph with triangle closure.

    Produces both a power-law degree distribution and high clustering, which
    is representative of citation networks (Cora/Citeseer/Pubmed).
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if num_nodes == 1:
        return _edgeless_graph(name)
    # Like the other generators, degenerate sizes saturate instead of raising:
    # with fewer than m + 1 nodes each newcomer simply attaches to everyone
    # already present.
    m = min(max(1, int(round(average_degree / 2))), num_nodes - 1)
    src_list: list[int] = []
    dst_list: list[int] = []
    # Repeated-target array implements preferential attachment: nodes appear
    # once per incident edge, so sampling uniformly from it is degree-biased.
    # Preallocated at its final size (m seeds + 2 entries per edge) so each
    # draw is O(1) instead of re-materialising a growing Python list.
    repeated = np.empty(m + 2 * m * (num_nodes - m), dtype=np.int64)
    repeated[:m] = np.arange(m)
    repeated_size = m
    # Incremental adjacency: out_neighbors[x] then in_neighbors[x], each in
    # edge-insertion order, concatenate to exactly the neighbour pool the
    # original edge-list scan produced.
    out_neighbors: list[list[int]] = [[] for _ in range(num_nodes)]
    in_neighbors: list[list[int]] = [[] for _ in range(num_nodes)]
    for new_node in range(m, num_nodes):
        chosen: set[int] = set()
        first_target: int | None = None
        while len(chosen) < m:
            if first_target is not None and rng.random() < triangle_prob and repeated_size:
                # Triangle step: connect to a random neighbour of the previous target.
                neighbor_pool = out_neighbors[first_target] + in_neighbors[first_target]
                if neighbor_pool:
                    candidate = int(rng.choice(neighbor_pool))
                else:
                    candidate = int(rng.choice(repeated[:repeated_size]))
            else:
                candidate = (
                    int(rng.choice(repeated[:repeated_size]))
                    if repeated_size
                    else int(rng.integers(0, new_node))
                )
            if candidate != new_node and candidate not in chosen:
                chosen.add(candidate)
                if first_target is None:
                    first_target = candidate
        for target in chosen:
            src_list.append(new_node)
            dst_list.append(target)
            out_neighbors[new_node].append(target)
            in_neighbors[target].append(new_node)
            repeated[repeated_size] = new_node
            repeated[repeated_size + 1] = target
            repeated_size += 2
    return Graph(
        num_nodes=num_nodes,
        src=np.asarray(src_list, dtype=np.int64),
        dst=np.asarray(dst_list, dtype=np.int64),
        name=name,
        undirected=True,
    )


def rmat_graph(
    num_nodes: int,
    average_degree: float,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    rng: np.random.Generator | None = None,
    name: str = "rmat",
    num_communities: int = 1,
) -> Graph:
    """Recursive-matrix (R-MAT / Graph500 style) power-law graph.

    Each edge picks one quadrant of the adjacency matrix per bit level with
    probabilities ``(a, b, c, d)`` (``d = 1 - a - b - c``), which yields the
    skewed, self-similar degree distributions of web and social graphs.  The
    defaults are the Graph500 parameters.  Because the recursion concentrates
    edges hierarchically, nodes are labelled with ``num_communities``
    contiguous id ranges on the returned graph's ``communities`` attribute —
    the natural community structure an R-MAT id encodes in its high bits.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    d = 1.0 - (a + b + c)
    if min(a, b, c, d) < 0 or max(a, b, c) <= 0:
        raise ValueError("quadrant probabilities must be non-negative with a+b+c <= 1")
    communities = None
    if num_communities > 1:
        # Contiguous id ranges: the recursion's high bits.
        communities = (
            np.arange(num_nodes, dtype=np.int64) * min(num_communities, num_nodes)
        ) // num_nodes
    if num_nodes == 1:
        return _edgeless_graph(name, communities=np.zeros(1, dtype=np.int64))
    levels = max(1, int(np.ceil(np.log2(num_nodes))))
    target_edges = max(1, int(round(num_nodes * average_degree / 2)))

    def _sample_batch(batch_size: int) -> tuple[np.ndarray, np.ndarray]:
        src = np.zeros(batch_size, dtype=np.int64)
        dst = np.zeros(batch_size, dtype=np.int64)
        draws = rng.random((batch_size, levels))
        for level in range(levels):
            r = draws[:, level]
            # Quadrants in probability order: a=(0,0), b=(0,1), c=(1,0), d=(1,1).
            src_bit = (r >= a + b).astype(np.int64)
            dst_bit = (((r >= a) & (r < a + b)) | (r >= a + b + c)).astype(np.int64)
            src = (src << 1) | src_bit
            dst = (dst << 1) | dst_bit
        in_range = (src < num_nodes) & (dst < num_nodes)
        src, dst = src[in_range], dst[in_range]
        loops = src == dst
        if loops.any():
            dst = dst.copy()
            dst[loops] = (
                dst[loops] + 1 + rng.integers(0, num_nodes - 1, size=int(loops.sum()))
            ) % num_nodes
        return src, dst

    # Same unique-undirected-edge accumulation as the Chung-Lu sampler: the
    # recursion concentrates draws on hub quadrants, so duplicates are common.
    unique_keys = np.empty(0, dtype=np.int64)
    for _round in range(12):
        remaining = target_edges - unique_keys.size
        if remaining <= 0:
            break
        batch = max(256, int(remaining * 2))
        src, dst = _sample_batch(batch)
        lo = np.minimum(src, dst)
        hi = np.maximum(src, dst)
        keys = lo * np.int64(num_nodes) + hi
        unique_keys = _merge_sorted_unique(unique_keys, keys)
    if unique_keys.size > target_edges:
        unique_keys = rng.permutation(unique_keys)[:target_edges]
    return Graph(
        num_nodes=num_nodes,
        src=(unique_keys // num_nodes).astype(np.int64),
        dst=(unique_keys % num_nodes).astype(np.int64),
        name=name,
        undirected=True,
        communities=communities,
    )
